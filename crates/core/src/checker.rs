//! Integrity-Checker — per-part MD5 hashing and pairwise comparison.
//!
//! For a pair of VMs, every header part is hashed directly; executable
//! section data is first run through Algorithm 2 ([`crate::rva`]) to undo
//! relocation, then hashed. The set of parts whose hashes disagree is the
//! comparison outcome — e.g. the paper's §V.B.4 experiment reports
//! mismatches in `IMAGE_NT_HEADER`, `IMAGE_OPTIONAL_HEADER`, all
//! `SECTION_HEADER`s and `.text`.

use mc_vmi::VmiSession;

use crate::digest::{digest, DigestAlgo, PartDigest};
use crate::error::CheckError;
use crate::parts::{ModuleParts, PartId};
use crate::searcher::ModuleImage;

/// A captured module plus its parsed decomposition and cached header
/// hashes. The expensive artifacts are computed once per VM and reused for
/// every pairwise comparison.
#[derive(Clone, Debug)]
pub struct ExtractedModule {
    /// The captured image.
    pub image: ModuleImage,
    /// Algorithm 1 output.
    pub parts: ModuleParts,
    /// Cached hashes of all non-executable parts (headers and section
    /// headers), pairwise-invariant.
    pub header_hashes: Vec<(PartId, PartDigest)>,
    /// Hash algorithm used for every part of this capture.
    pub algo: DigestAlgo,
}

impl ExtractedModule {
    /// Parses and pre-hashes a captured image with the paper's MD5.
    pub fn new(image: ModuleImage) -> Result<Self, CheckError> {
        Self::with_algo(image, DigestAlgo::Md5)
    }

    /// Parses and pre-hashes a captured image under `algo`.
    pub fn with_algo(image: ModuleImage, algo: DigestAlgo) -> Result<Self, CheckError> {
        let parts = ModuleParts::extract(&image)?;
        let header_hashes = parts
            .parts
            .iter()
            .filter(|p| !p.is_exec_data)
            .map(|p| (p.id.clone(), digest(algo, &image.bytes[p.range.clone()])))
            .collect();
        Ok(ExtractedModule {
            image,
            parts,
            header_hashes,
            algo,
        })
    }

    /// Total image length (cost accounting).
    pub fn len(&self) -> usize {
        self.image.bytes.len()
    }

    /// True when the image is empty (never the case for parsed modules).
    pub fn is_empty(&self) -> bool {
        self.image.bytes.is_empty()
    }
}

/// Outcome of comparing one module across two VMs.
#[derive(Clone, Debug)]
pub struct PairOutcome {
    /// The two VM names compared.
    pub vms: (String, String),
    /// Parts whose hashes disagreed (empty = full match).
    pub mismatched: Vec<PartId>,
    /// Relocation slots reconciled across all executable sections.
    pub slots_adjusted: usize,
    /// Unreconciled byte differences (tampering indicator).
    pub residual_diffs: usize,
}

impl PairOutcome {
    /// True if every part matched.
    pub fn matches(&self) -> bool {
        self.mismatched.is_empty()
    }
}

/// Compares one module extracted from two VMs (the paper's per-pair unit of
/// work). Charges hashing/diffing cost to `ledger` when provided.
pub fn compare_pair(
    a: &ExtractedModule,
    b: &ExtractedModule,
    mut ledger: Option<&mut VmiSession<'_>>,
) -> PairOutcome {
    debug_assert_eq!(a.algo, b.algo, "one digest algorithm per run");
    let mut mismatched = Vec::new();
    let mut slots_adjusted = 0usize;
    let mut residual_diffs = 0usize;

    // Headers: cached hashes, aligned by part id. A part present on one
    // side only (e.g. a section added by DLL injection changed the section
    // count) is a mismatch by construction.
    for (id, ha) in &a.header_hashes {
        match b.header_hashes.iter().find(|(bid, _)| bid == id) {
            Some((_, hb)) if hb == ha => {}
            _ => mismatched.push(id.clone()),
        }
    }
    for (id, _) in &b.header_hashes {
        if !a.header_hashes.iter().any(|(aid, _)| aid == id) {
            mismatched.push(id.clone());
        }
    }

    // Executable sections: adjust RVAs pairwise, then hash.
    for sa in &a.parts.exec_sections {
        let Some(sb) = b.parts.exec_sections.iter().find(|s| s.name == sa.name) else {
            mismatched.push(PartId::SectionData(sa.name.clone()));
            continue;
        };
        let mut bytes_a = a.image.bytes[sa.range.clone()].to_vec();
        let mut bytes_b = b.image.bytes[sb.range.clone()].to_vec();
        if let Some(ledger) = ledger.as_deref_mut() {
            let cost = *ledger.cost_model();
            // Scan both buffers once (diff), hash both.
            ledger.charge_process(cost.diff_byte_ns, (bytes_a.len() + bytes_b.len()) as u64);
            ledger.charge_process(
                cost.hash_byte_ns * a.algo.cost_factor(),
                (bytes_a.len() + bytes_b.len()) as u64,
            );
        }
        let stats = crate::rva::adjust_rvas(
            &mut bytes_a,
            &mut bytes_b,
            a.image.base,
            b.image.base,
            a.parts.width,
        );
        slots_adjusted += stats.slots_adjusted;
        residual_diffs += stats.residual_diffs;
        if bytes_a.len() != bytes_b.len() || digest(a.algo, &bytes_a) != digest(b.algo, &bytes_b) {
            mismatched.push(PartId::SectionData(sa.name.clone()));
        }
    }
    for sb in &b.parts.exec_sections {
        if !a.parts.exec_sections.iter().any(|s| s.name == sb.name) {
            mismatched.push(PartId::SectionData(sb.name.clone()));
        }
    }

    mismatched.sort();
    mismatched.dedup();
    PairOutcome {
        vms: (a.image.vm_name.clone(), b.image.vm_name.clone()),
        mismatched,
        slots_adjusted,
        residual_diffs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_guest::build_cloud_with_modules;
    use mc_hypervisor::{AddressWidth, Hypervisor};
    use mc_pe::corpus::ModuleBlueprint;
    use mc_vmi::VmiSession;

    use crate::searcher::ModuleSearcher;

    fn extract_from(hv: &Hypervisor, vm: mc_hypervisor::VmId, module: &str) -> ExtractedModule {
        let mut s = VmiSession::attach(hv, vm).unwrap();
        let img = ModuleSearcher::find(&mut s, module).unwrap();
        ExtractedModule::new(img).unwrap()
    }

    fn two_vm_cloud(width: AddressWidth) -> (Hypervisor, Vec<mc_guest::GuestOs>) {
        let mut hv = Hypervisor::new();
        let bps = vec![ModuleBlueprint::new("hal.dll", width, 16 * 1024)];
        let guests = build_cloud_with_modules(&mut hv, 2, width, &bps).unwrap();
        (hv, guests)
    }

    #[test]
    fn clean_modules_fully_match_despite_relocation() {
        let (hv, guests) = two_vm_cloud(AddressWidth::W32);
        let a = extract_from(&hv, guests[0].vm, "hal.dll");
        let b = extract_from(&hv, guests[1].vm, "hal.dll");
        assert_ne!(a.image.base, b.image.base, "distinct bases by construction");

        // Raw .text bytes differ before adjustment...
        let ta = &a.image.bytes[a.parts.exec_sections[0].range.clone()];
        let tb = &b.image.bytes[b.parts.exec_sections[0].range.clone()];
        assert_ne!(ta, tb);

        // ...but the comparison reconciles and matches everything.
        let out = compare_pair(&a, &b, None);
        assert!(out.matches(), "mismatched: {:?}", out.mismatched);
        assert!(out.slots_adjusted > 0, "relocation slots were reconciled");
        assert_eq!(out.residual_diffs, 0);
    }

    #[test]
    fn in_memory_text_patch_flags_text_only() {
        let (mut hv, guests) = two_vm_cloud(AddressWidth::W32);
        // Patch a code byte (clear of any reloc slot) inside VM 0's hal.dll.
        let truth = guests[0].find_module("hal.dll").unwrap().clone();
        // Offset 0x1000 is the start of .text (first section after headers);
        // add a small odd offset to land inside code.
        let patch_off = 0x1000u64 + 3;
        guests[0]
            .patch_module(&mut hv, "hal.dll", patch_off, &[0xEB])
            .unwrap();
        let _ = truth;
        let a = extract_from(&hv, guests[0].vm, "hal.dll");
        let b = extract_from(&hv, guests[1].vm, "hal.dll");
        let out = compare_pair(&a, &b, None);
        assert_eq!(
            out.mismatched,
            vec![PartId::SectionData(".text".into())],
            "only .text content differs"
        );
        assert!(out.residual_diffs > 0);
    }

    #[test]
    fn sixty_four_bit_pair_matches() {
        let (hv, guests) = two_vm_cloud(AddressWidth::W64);
        let a = extract_from(&hv, guests[0].vm, "hal.dll");
        let b = extract_from(&hv, guests[1].vm, "hal.dll");
        let out = compare_pair(&a, &b, None);
        assert!(out.matches(), "mismatched: {:?}", out.mismatched);
        assert!(out.slots_adjusted > 0);
    }

    #[test]
    fn structurally_divergent_modules_flag_the_extra_parts() {
        // Compare a module against a variant with an extra section (as the
        // DLL-hook attack produces): parts present on one side only are
        // mismatches by construction, in both directions.
        let (hv, guests) = two_vm_cloud(AddressWidth::W32);
        let a = extract_from(&hv, guests[0].vm, "hal.dll");
        let mut b = extract_from(&hv, guests[1].vm, "hal.dll");
        // Simulate divergence by renaming b's .text section in its parsed
        // metadata (cheaper than rebuilding a whole cloud).
        for p in &mut b.parts.parts {
            if let PartId::SectionData(name) = &mut p.id {
                if name == ".text" {
                    *name = ".evil".into();
                }
            }
        }
        for s in &mut b.parts.exec_sections {
            if s.name == ".text" {
                s.name = ".evil".into();
            }
        }
        let out = compare_pair(&a, &b, None);
        assert!(out
            .mismatched
            .contains(&PartId::SectionData(".text".into())));
        assert!(out
            .mismatched
            .contains(&PartId::SectionData(".evil".into())));
    }

    #[test]
    fn sha256_extraction_matches_clean_pairs_too() {
        let (hv, guests) = two_vm_cloud(AddressWidth::W32);
        let extract = |vm| {
            let mut s = VmiSession::attach(&hv, vm).unwrap();
            let img = ModuleSearcher::find(&mut s, "hal.dll").unwrap();
            ExtractedModule::with_algo(img, crate::digest::DigestAlgo::Sha256).unwrap()
        };
        let a = extract(guests[0].vm);
        let b = extract(guests[1].vm);
        let out = compare_pair(&a, &b, None);
        assert!(out.matches(), "mismatched: {:?}", out.mismatched);
    }

    #[test]
    fn ledger_accrues_checker_costs() {
        let (hv, guests) = two_vm_cloud(AddressWidth::W32);
        let a = extract_from(&hv, guests[0].vm, "hal.dll");
        let b = extract_from(&hv, guests[1].vm, "hal.dll");
        let mut ledger = VmiSession::attach(&hv, guests[0].vm).unwrap();
        let before = ledger.elapsed();
        compare_pair(&a, &b, Some(&mut ledger));
        assert!(ledger.elapsed() > before);
    }
}
