//! Integrity-Checker — per-part MD5 hashing and pairwise comparison.
//!
//! For a pair of VMs, every header part is hashed directly; executable
//! section data is first run through Algorithm 2 ([`crate::rva`]) to undo
//! relocation, then hashed. The set of parts whose hashes disagree is the
//! comparison outcome — e.g. the paper's §V.B.4 experiment reports
//! mismatches in `IMAGE_NT_HEADER`, `IMAGE_OPTIONAL_HEADER`, all
//! `SECTION_HEADER`s and `.text`.

use mc_vmi::VmiSession;

use crate::digest::{digest, DigestAlgo, PartDigest};
use crate::error::CheckError;
use crate::parts::{ModuleParts, PartId};
use crate::searcher::ModuleImage;

/// A captured module plus its parsed decomposition and cached header
/// hashes. The expensive artifacts are computed once per VM and reused for
/// every pairwise comparison.
#[derive(Clone, Debug)]
pub struct ExtractedModule {
    /// The captured image.
    pub image: ModuleImage,
    /// Algorithm 1 output.
    pub parts: ModuleParts,
    /// Cached hashes of all non-executable parts (headers and section
    /// headers), pairwise-invariant.
    pub header_hashes: Vec<(PartId, PartDigest)>,
    /// Hash algorithm used for every part of this capture.
    pub algo: DigestAlgo,
}

impl ExtractedModule {
    /// Parses and pre-hashes a captured image with the paper's MD5.
    pub fn new(image: ModuleImage) -> Result<Self, CheckError> {
        Self::with_algo(image, DigestAlgo::Md5)
    }

    /// Parses and pre-hashes a captured image under `algo`.
    pub fn with_algo(image: ModuleImage, algo: DigestAlgo) -> Result<Self, CheckError> {
        let parts = ModuleParts::extract(&image)?;
        let mut header_hashes: Vec<(PartId, PartDigest)> = parts
            .parts
            .iter()
            .filter(|p| !p.is_exec_data)
            .map(|p| (p.id.clone(), digest(algo, &image.bytes[p.range.clone()])))
            .collect();
        // Sorted by part id so pairwise comparison is a linear merge.
        header_hashes.sort_by(|x, y| x.0.cmp(&y.0));
        Ok(ExtractedModule {
            image,
            parts,
            header_hashes,
            algo,
        })
    }

    /// Total image length (cost accounting).
    pub fn len(&self) -> usize {
        self.image.bytes.len()
    }

    /// True when the image is empty (never the case for parsed modules).
    pub fn is_empty(&self) -> bool {
        self.image.bytes.is_empty()
    }
}

/// Outcome of comparing one module across two VMs.
#[derive(Clone, Debug)]
pub struct PairOutcome {
    /// The two VM names compared.
    pub vms: (String, String),
    /// Parts whose hashes disagreed (empty = full match).
    pub mismatched: Vec<PartId>,
    /// Relocation slots reconciled across all executable sections.
    pub slots_adjusted: usize,
    /// Unreconciled byte differences (tampering indicator).
    pub residual_diffs: usize,
}

impl PairOutcome {
    /// True if every part matched.
    pub fn matches(&self) -> bool {
        self.mismatched.is_empty()
    }
}

/// Reusable scratch buffers for the pairwise path. Algorithm 2 mutates both
/// section copies in place, so each comparison needs writable working
/// memory; keeping it in a scratch arena lets a sequential matrix sweep run
/// allocation-free after the first pair instead of allocating two fresh
/// buffers per pair.
#[derive(Clone, Debug, Default)]
pub struct PairScratch {
    buf_a: Vec<u8>,
    buf_b: Vec<u8>,
}

impl PairScratch {
    /// Creates an empty arena (buffers grow to the largest section seen).
    pub fn new() -> Self {
        Self::default()
    }
}

/// Compares one module extracted from two VMs (the paper's per-pair unit of
/// work). Charges hashing/diffing cost to `ledger` when provided.
///
/// Both captures must have been hashed under the same digest algorithm;
/// a mismatch is a typed error (digests under different algorithms are
/// incomparable and would otherwise flag every section).
pub fn compare_pair(
    a: &ExtractedModule,
    b: &ExtractedModule,
    ledger: Option<&mut VmiSession<'_>>,
) -> Result<PairOutcome, CheckError> {
    compare_pair_with(a, b, ledger, &mut PairScratch::new())
}

/// [`compare_pair`] with caller-provided scratch buffers, for matrix sweeps
/// that reuse one arena across many pairs.
pub fn compare_pair_with(
    a: &ExtractedModule,
    b: &ExtractedModule,
    mut ledger: Option<&mut VmiSession<'_>>,
    scratch: &mut PairScratch,
) -> Result<PairOutcome, CheckError> {
    if a.algo != b.algo {
        return Err(CheckError::AlgoMismatch {
            a: a.algo,
            b: b.algo,
        });
    }
    let algo = a.algo;
    let mut mismatched = Vec::new();
    let mut slots_adjusted = 0usize;
    let mut residual_diffs = 0usize;

    // Headers: cached hashes, sorted by part id at extraction, so one
    // linear merge aligns both sides. A part present on one side only
    // (e.g. a section added by DLL injection changed the section count)
    // is a mismatch by construction.
    let ha = &a.header_hashes;
    let hb = &b.header_hashes;
    let (mut i, mut j) = (0usize, 0usize);
    while i < ha.len() && j < hb.len() {
        match ha[i].0.cmp(&hb[j].0) {
            std::cmp::Ordering::Equal => {
                if ha[i].1 != hb[j].1 {
                    mismatched.push(ha[i].0.clone());
                }
                i += 1;
                j += 1;
            }
            std::cmp::Ordering::Less => {
                mismatched.push(ha[i].0.clone());
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                mismatched.push(hb[j].0.clone());
                j += 1;
            }
        }
    }
    for (id, _) in &ha[i..] {
        mismatched.push(id.clone());
    }
    for (id, _) in &hb[j..] {
        mismatched.push(id.clone());
    }

    // Executable sections: adjust RVAs pairwise, then hash.
    for sa in &a.parts.exec_sections {
        let Some(sb) = b.parts.exec_sections.iter().find(|s| s.name == sa.name) else {
            mismatched.push(PartId::SectionData(sa.name.clone()));
            continue;
        };
        scratch.buf_a.clear();
        scratch
            .buf_a
            .extend_from_slice(&a.image.bytes[sa.range.clone()]);
        scratch.buf_b.clear();
        scratch
            .buf_b
            .extend_from_slice(&b.image.bytes[sb.range.clone()]);
        let (bytes_a, bytes_b) = (&mut scratch.buf_a, &mut scratch.buf_b);
        if let Some(ledger) = ledger.as_deref_mut() {
            let cost = *ledger.cost_model();
            // Scan both buffers once (diff), hash both.
            ledger.charge_process(cost.diff_byte_ns, (bytes_a.len() + bytes_b.len()) as u64);
            ledger.charge_process(
                cost.hash_byte_ns * algo.cost_factor(),
                (bytes_a.len() + bytes_b.len()) as u64,
            );
        }
        let stats =
            crate::rva::adjust_rvas(bytes_a, bytes_b, a.image.base, b.image.base, a.parts.width);
        slots_adjusted += stats.slots_adjusted;
        residual_diffs += stats.residual_diffs;
        if bytes_a.len() != bytes_b.len() || digest(algo, bytes_a) != digest(algo, bytes_b) {
            mismatched.push(PartId::SectionData(sa.name.clone()));
        }
    }
    for sb in &b.parts.exec_sections {
        if !a.parts.exec_sections.iter().any(|s| s.name == sb.name) {
            mismatched.push(PartId::SectionData(sb.name.clone()));
        }
    }

    mismatched.sort();
    mismatched.dedup();
    Ok(PairOutcome {
        vms: (a.image.vm_name.clone(), b.image.vm_name.clone()),
        mismatched,
        slots_adjusted,
        residual_diffs,
    })
}

/// The canonical (self-normalized) digest set of one capture.
///
/// Instead of reconciling relocation pairwise (Algorithm 2, O(t²) pairs),
/// each capture is normalized *once* against its own load base via its
/// `.reloc` table and hashed; two clean captures then have byte-equal
/// canonical forms regardless of base, so majority voting reduces to
/// content-addressed bucket grouping of fingerprints — O(t). Captures
/// without a parseable `.reloc` section have no canonical form and fall
/// back to the pairwise path (the table is in-guest metadata a rootkit can
/// strip; stripping it costs the attacker the fast path, not detection).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct CanonicalForm {
    /// Per-part digests — header hashes plus canonical executable-section
    /// hashes — sorted by part id. Two captures bucket together iff these
    /// are equal; the vector is directly usable as a hash-map key.
    pub part_digests: Vec<(PartId, PartDigest)>,
    /// Relocation slots rewritten during normalization.
    pub slots_normalized: usize,
    /// Digest algorithm of every entry.
    pub algo: DigestAlgo,
}

impl CanonicalForm {
    /// The bucket key: the full sorted per-part digest vector.
    pub fn fingerprint(&self) -> &[(PartId, PartDigest)] {
        &self.part_digests
    }
}

/// Computes a capture's canonical form, or `None` when the module carries
/// no parseable `.reloc` section (pairwise fallback). Charges parse, slot
/// rewrite, and hash costs to `ledger` when provided — once per capture,
/// not per pair.
pub fn canonical_form(
    m: &ExtractedModule,
    ledger: Option<&mut VmiSession<'_>>,
) -> Option<CanonicalForm> {
    let parsed = mc_pe::parser::ParsedModule::parse_memory(&m.image.bytes).ok()?;
    let reloc_len = parsed
        .find_section(".reloc")
        .map(|i| parsed.sections[i].data_range.len())?;
    let mut bytes = m.image.bytes.clone();
    let slots_normalized =
        crate::rva::normalize_with_reloc_table(&mut bytes, m.image.base, &parsed)?;
    if let Some(ledger) = ledger {
        let cost = *ledger.cost_model();
        let exec_len: usize = m.parts.exec_sections.iter().map(|s| s.range.len()).sum();
        // Parse the reloc metadata, rewrite each slot, hash each canonical
        // executable section — all linear in this one capture.
        ledger.charge_process(cost.parse_byte_ns, reloc_len as u64);
        ledger.charge_process(
            cost.diff_byte_ns,
            (slots_normalized * m.parts.width.bytes()) as u64,
        );
        ledger.charge_process(cost.hash_byte_ns * m.algo.cost_factor(), exec_len as u64);
    }
    let mut part_digests = m.header_hashes.clone();
    for s in &m.parts.exec_sections {
        part_digests.push((
            PartId::SectionData(s.name.clone()),
            digest(m.algo, &bytes[s.range.clone()]),
        ));
    }
    part_digests.sort_by(|x, y| x.0.cmp(&y.0));
    Some(CanonicalForm {
        part_digests,
        slots_normalized,
        algo: m.algo,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_guest::build_cloud_with_modules;
    use mc_hypervisor::{AddressWidth, Hypervisor};
    use mc_pe::corpus::ModuleBlueprint;
    use mc_vmi::VmiSession;

    use crate::searcher::ModuleSearcher;

    fn extract_from(hv: &Hypervisor, vm: mc_hypervisor::VmId, module: &str) -> ExtractedModule {
        let mut s = VmiSession::attach(hv, vm).unwrap();
        let img = ModuleSearcher::find(&mut s, module).unwrap();
        ExtractedModule::new(img).unwrap()
    }

    fn two_vm_cloud(width: AddressWidth) -> (Hypervisor, Vec<mc_guest::GuestOs>) {
        let mut hv = Hypervisor::new();
        let bps = vec![ModuleBlueprint::new("hal.dll", width, 16 * 1024)];
        let guests = build_cloud_with_modules(&mut hv, 2, width, &bps).unwrap();
        (hv, guests)
    }

    #[test]
    fn clean_modules_fully_match_despite_relocation() {
        let (hv, guests) = two_vm_cloud(AddressWidth::W32);
        let a = extract_from(&hv, guests[0].vm, "hal.dll");
        let b = extract_from(&hv, guests[1].vm, "hal.dll");
        assert_ne!(a.image.base, b.image.base, "distinct bases by construction");

        // Raw .text bytes differ before adjustment...
        let ta = &a.image.bytes[a.parts.exec_sections[0].range.clone()];
        let tb = &b.image.bytes[b.parts.exec_sections[0].range.clone()];
        assert_ne!(ta, tb);

        // ...but the comparison reconciles and matches everything.
        let out = compare_pair(&a, &b, None).unwrap();
        assert!(out.matches(), "mismatched: {:?}", out.mismatched);
        assert!(out.slots_adjusted > 0, "relocation slots were reconciled");
        assert_eq!(out.residual_diffs, 0);
    }

    #[test]
    fn in_memory_text_patch_flags_text_only() {
        let (mut hv, guests) = two_vm_cloud(AddressWidth::W32);
        // Patch a code byte (clear of any reloc slot) inside VM 0's hal.dll.
        let truth = guests[0].find_module("hal.dll").unwrap().clone();
        // Offset 0x1000 is the start of .text (first section after headers);
        // add a small odd offset to land inside code.
        let patch_off = 0x1000u64 + 3;
        guests[0]
            .patch_module(&mut hv, "hal.dll", patch_off, &[0xEB])
            .unwrap();
        let _ = truth;
        let a = extract_from(&hv, guests[0].vm, "hal.dll");
        let b = extract_from(&hv, guests[1].vm, "hal.dll");
        let out = compare_pair(&a, &b, None).unwrap();
        assert_eq!(
            out.mismatched,
            vec![PartId::SectionData(".text".into())],
            "only .text content differs"
        );
        assert!(out.residual_diffs > 0);
    }

    #[test]
    fn sixty_four_bit_pair_matches() {
        let (hv, guests) = two_vm_cloud(AddressWidth::W64);
        let a = extract_from(&hv, guests[0].vm, "hal.dll");
        let b = extract_from(&hv, guests[1].vm, "hal.dll");
        let out = compare_pair(&a, &b, None).unwrap();
        assert!(out.matches(), "mismatched: {:?}", out.mismatched);
        assert!(out.slots_adjusted > 0);
    }

    #[test]
    fn structurally_divergent_modules_flag_the_extra_parts() {
        // Compare a module against a variant with an extra section (as the
        // DLL-hook attack produces): parts present on one side only are
        // mismatches by construction, in both directions.
        let (hv, guests) = two_vm_cloud(AddressWidth::W32);
        let a = extract_from(&hv, guests[0].vm, "hal.dll");
        let mut b = extract_from(&hv, guests[1].vm, "hal.dll");
        // Simulate divergence by renaming b's .text section in its parsed
        // metadata (cheaper than rebuilding a whole cloud).
        for p in &mut b.parts.parts {
            if let PartId::SectionData(name) = &mut p.id {
                if name == ".text" {
                    *name = ".evil".into();
                }
            }
        }
        for s in &mut b.parts.exec_sections {
            if s.name == ".text" {
                s.name = ".evil".into();
            }
        }
        let out = compare_pair(&a, &b, None).unwrap();
        assert!(out
            .mismatched
            .contains(&PartId::SectionData(".text".into())));
        assert!(out
            .mismatched
            .contains(&PartId::SectionData(".evil".into())));
    }

    #[test]
    fn sha256_extraction_matches_clean_pairs_too() {
        let (hv, guests) = two_vm_cloud(AddressWidth::W32);
        let extract = |vm| {
            let mut s = VmiSession::attach(&hv, vm).unwrap();
            let img = ModuleSearcher::find(&mut s, "hal.dll").unwrap();
            ExtractedModule::with_algo(img, crate::digest::DigestAlgo::Sha256).unwrap()
        };
        let a = extract(guests[0].vm);
        let b = extract(guests[1].vm);
        let out = compare_pair(&a, &b, None).unwrap();
        assert!(out.matches(), "mismatched: {:?}", out.mismatched);
    }

    #[test]
    fn ledger_accrues_checker_costs() {
        let (hv, guests) = two_vm_cloud(AddressWidth::W32);
        let a = extract_from(&hv, guests[0].vm, "hal.dll");
        let b = extract_from(&hv, guests[1].vm, "hal.dll");
        let mut ledger = VmiSession::attach(&hv, guests[0].vm).unwrap();
        let before = ledger.elapsed();
        compare_pair(&a, &b, Some(&mut ledger)).unwrap();
        assert!(ledger.elapsed() > before);
    }

    #[test]
    fn algo_mismatch_is_a_typed_error() {
        let (hv, guests) = two_vm_cloud(AddressWidth::W32);
        let a = extract_from(&hv, guests[0].vm, "hal.dll");
        let mut s = VmiSession::attach(&hv, guests[1].vm).unwrap();
        let img = ModuleSearcher::find(&mut s, "hal.dll").unwrap();
        let b = ExtractedModule::with_algo(img, crate::digest::DigestAlgo::Sha256).unwrap();
        assert!(matches!(
            compare_pair(&a, &b, None),
            Err(CheckError::AlgoMismatch { .. })
        ));
    }

    #[test]
    fn header_hashes_are_sorted_for_the_merge() {
        let (hv, guests) = two_vm_cloud(AddressWidth::W32);
        let a = extract_from(&hv, guests[0].vm, "hal.dll");
        assert!(a.header_hashes.windows(2).all(|w| w[0].0 <= w[1].0));
    }

    #[test]
    fn scratch_arena_reuse_agrees_with_fresh_buffers() {
        let (hv, guests) = two_vm_cloud(AddressWidth::W32);
        let a = extract_from(&hv, guests[0].vm, "hal.dll");
        let b = extract_from(&hv, guests[1].vm, "hal.dll");
        let mut scratch = PairScratch::new();
        let first = compare_pair_with(&a, &b, None, &mut scratch).unwrap();
        let second = compare_pair_with(&a, &b, None, &mut scratch).unwrap();
        let fresh = compare_pair(&a, &b, None).unwrap();
        assert_eq!(first.mismatched, fresh.mismatched);
        assert_eq!(second.mismatched, fresh.mismatched);
        assert_eq!(second.slots_adjusted, fresh.slots_adjusted);
    }

    #[test]
    fn clean_captures_share_a_canonical_fingerprint() {
        let (hv, guests) = two_vm_cloud(AddressWidth::W32);
        let a = extract_from(&hv, guests[0].vm, "hal.dll");
        let b = extract_from(&hv, guests[1].vm, "hal.dll");
        assert_ne!(a.image.base, b.image.base);
        let ca = canonical_form(&a, None).expect("corpus modules carry .reloc");
        let cb = canonical_form(&b, None).unwrap();
        assert!(ca.slots_normalized > 0);
        assert_eq!(
            ca.fingerprint(),
            cb.fingerprint(),
            "clean captures normalize to identical digests despite distinct bases"
        );
    }

    #[test]
    fn tampered_capture_gets_a_distinct_canonical_fingerprint() {
        let (mut hv, guests) = two_vm_cloud(AddressWidth::W32);
        guests[0]
            .patch_module(&mut hv, "hal.dll", 0x1000 + 3, &[0xEB])
            .unwrap();
        let a = extract_from(&hv, guests[0].vm, "hal.dll");
        let b = extract_from(&hv, guests[1].vm, "hal.dll");
        let ca = canonical_form(&a, None).unwrap();
        let cb = canonical_form(&b, None).unwrap();
        assert_ne!(ca.fingerprint(), cb.fingerprint());
    }

    #[test]
    fn canonical_ledger_cost_is_per_capture_not_per_pair() {
        let (hv, guests) = two_vm_cloud(AddressWidth::W32);
        let a = extract_from(&hv, guests[0].vm, "hal.dll");
        let b = extract_from(&hv, guests[1].vm, "hal.dll");
        let mut ledger = VmiSession::attach(&hv, guests[0].vm).unwrap();
        ledger.take_elapsed();
        canonical_form(&a, Some(&mut ledger)).unwrap();
        canonical_form(&b, Some(&mut ledger)).unwrap();
        let canonical_cost = ledger.take_elapsed();
        compare_pair(&a, &b, Some(&mut ledger)).unwrap();
        let pair_cost = ledger.take_elapsed();
        assert!(
            canonical_cost.as_nanos() > 0,
            "canonical work is not free: {canonical_cost}"
        );
        assert!(
            canonical_cost.as_nanos() < 2 * pair_cost.as_nanos(),
            "two canonicalizations ({canonical_cost}) should not dwarf one pair ({pair_cost})"
        );
    }
}
