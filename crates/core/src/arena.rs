//! Capture arena — recycled backing storage for module captures.
//!
//! A pool scan captures the same modules round after round; allocating a
//! fresh multi-page `Vec<u8>` per capture (and another deep copy per
//! canonical normalization) churns the allocator for buffers whose sizes
//! repeat exactly. [`CaptureArena`] keeps retired buffers on a free list
//! and hands them back out best-fit: a steady-state scan reaches a fixed
//! point where every capture reuses a previous round's allocation.
//!
//! Lifetime rules (DESIGN.md §14):
//!
//! * The arena never aliases: [`CaptureArena::acquire`] transfers
//!   ownership out, [`CaptureArena::release`] transfers it back. A buffer
//!   is either *in the arena* or *owned by exactly one capture* — the
//!   borrow checker enforces what a bump-pointer arena would need unsafe
//!   code for.
//! * Shared captures ([`std::sync::Arc`]) are reclaimed opportunistically:
//!   [`CaptureArena::reclaim`] recovers the backing buffer only when the
//!   caller held the last reference, else the buffer stays alive with its
//!   remaining holders and nothing is recycled (never a copy, never a
//!   dangling slice).
//! * The free list is bounded ([`CaptureArena::MAX_RETAINED`]) so one
//!   burst of oversized modules cannot pin memory forever.

use std::sync::Arc;

use crate::checker::ExtractedModule;

/// Recycled-buffer statistics (exported as `capture_arena_*` gauges).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ArenaStats {
    /// Buffers handed out that needed a fresh heap allocation.
    pub allocs: u64,
    /// Buffers handed out from the free list (no allocation).
    pub reuses: u64,
    /// Total bytes of capacity returned to the free list over time.
    pub recycled_bytes: u64,
}

/// A bounded free list of capture buffers (see module docs).
#[derive(Clone, Debug, Default)]
pub struct CaptureArena {
    free: Vec<Vec<u8>>,
    stats: ArenaStats,
}

impl CaptureArena {
    /// Free-list bound: retiring a buffer past this many drops it.
    pub const MAX_RETAINED: usize = 64;

    /// An empty arena.
    pub fn new() -> Self {
        CaptureArena::default()
    }

    /// Hands out a zeroed buffer of exactly `len` bytes, reusing the
    /// best-fitting retired buffer (smallest capacity that holds `len`)
    /// when one exists.
    pub fn acquire(&mut self, len: usize) -> Vec<u8> {
        let best = self
            .free
            .iter()
            .enumerate()
            .filter(|(_, b)| b.capacity() >= len)
            .min_by_key(|(_, b)| b.capacity())
            .map(|(i, _)| i);
        match best {
            Some(i) => {
                let mut buf = self.free.swap_remove(i);
                buf.clear();
                buf.resize(len, 0);
                self.stats.reuses += 1;
                buf
            }
            None => {
                self.stats.allocs += 1;
                vec![0u8; len]
            }
        }
    }

    /// Returns a buffer to the free list (dropped if the list is full).
    pub fn release(&mut self, buf: Vec<u8>) {
        if buf.capacity() == 0 || self.free.len() >= Self::MAX_RETAINED {
            return;
        }
        self.stats.recycled_bytes += buf.capacity() as u64;
        self.free.push(buf);
    }

    /// Recovers the image buffer out of a shared capture if `module` was
    /// its last reference; otherwise the capture (and its buffer) live on
    /// with the other holders and nothing happens.
    pub fn reclaim(&mut self, module: Arc<ExtractedModule>) {
        if let Ok(owned) = Arc::try_unwrap(module) {
            self.release(owned.image.bytes);
        }
    }

    /// Buffers currently parked on the free list.
    pub fn retained(&self) -> usize {
        self.free.len()
    }

    /// Allocation/reuse counters.
    pub fn stats(&self) -> ArenaStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquire_allocates_then_reuses() {
        let mut a = CaptureArena::new();
        let b1 = a.acquire(4096);
        assert_eq!(a.stats().allocs, 1);
        a.release(b1);
        let b2 = a.acquire(4096);
        assert_eq!(a.stats().reuses, 1);
        assert_eq!(b2.len(), 4096);
        assert!(
            b2.iter().all(|&x| x == 0),
            "reused buffers come back zeroed"
        );
    }

    #[test]
    fn best_fit_prefers_the_tightest_buffer() {
        let mut a = CaptureArena::new();
        a.release(vec![1u8; 16 * 1024]);
        a.release(vec![1u8; 4 * 1024]);
        let b = a.acquire(3 * 1024);
        assert_eq!(b.capacity(), 4 * 1024, "tightest fit wins");
        assert_eq!(a.retained(), 1);
    }

    #[test]
    fn too_small_buffers_are_not_reused() {
        let mut a = CaptureArena::new();
        a.release(vec![1u8; 1024]);
        let b = a.acquire(8 * 1024);
        assert_eq!(a.stats().allocs, 1);
        assert_eq!(b.len(), 8 * 1024);
        assert_eq!(a.retained(), 1, "the small buffer stays parked");
    }

    #[test]
    fn free_list_is_bounded() {
        let mut a = CaptureArena::new();
        for _ in 0..(CaptureArena::MAX_RETAINED + 10) {
            a.release(vec![0u8; 64]);
        }
        assert_eq!(a.retained(), CaptureArena::MAX_RETAINED);
    }

    #[test]
    fn reclaim_recovers_only_sole_ownership() {
        use crate::digest::DigestAlgo;
        use crate::parts::ModuleParts;
        use crate::searcher::ModuleImage;
        use mc_hypervisor::VmId;

        let module = |bytes: Vec<u8>| {
            Arc::new(ExtractedModule {
                image: ModuleImage {
                    vm: VmId(0),
                    vm_name: "dom0".into(),
                    name: "m".into(),
                    base: 0,
                    bytes,
                },
                parts: ModuleParts {
                    parts: Vec::new(),
                    exec_sections: Vec::new(),
                    image_len: 2048,
                    width: mc_pe::AddressWidth::W32,
                },
                header_hashes: Vec::new(),
                algo: DigestAlgo::Md5,
            })
        };

        let mut a = CaptureArena::new();
        // Sole owner: buffer comes back.
        a.reclaim(module(vec![0u8; 2048]));
        assert_eq!(a.retained(), 1);
        // Shared: the other holder keeps it alive, nothing recycled.
        let shared = module(vec![0u8; 2048]);
        let keep = Arc::clone(&shared);
        a.reclaim(shared);
        assert_eq!(a.retained(), 1);
        assert_eq!(keep.image.bytes.len(), 2048);
    }
}
