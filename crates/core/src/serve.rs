//! `mc-serve`: a long-running fleet attestation daemon on a hand-rolled,
//! offline-safe, **simulated-time event loop**.
//!
//! The fleet layer up to PR 5 answers one shape of question: "sweep
//! everything, hand me the report". A cloud attestation service faces the
//! inverse shape — *"is module X clean on pool Y right now?"* — asked by
//! many tenants, under load, against a fleet that is partially sick. This
//! module promotes the sweep into a daemon that owns continuously
//! refreshed fleet state and admits [`AttestQuery`] requests through a
//! four-stage robustness pipeline:
//!
//! 1. **Catalog + quota** (the front door): queries naming a pool the
//!    fleet does not have, or a module no committed sweep has ever seen,
//!    are rejected [`Rejected::UnknownTarget`]; each tenant then pays one
//!    token from its [`QuotaPolicy`] bucket or is rejected
//!    [`Rejected::QuotaExceeded`]. Both are typed, instant rejections —
//!    never silent drops.
//! 2. **Bounded admission queue**: admitted queries join a FIFO queue in
//!    front of a single logical attestation server. When the queue holds
//!    [`ServeConfig::queue_capacity`] in-flight queries the arrival is
//!    rejected [`Rejected::QueueFull`] — explicit backpressure instead of
//!    unbounded growth. A query whose turn arrives after its deadline is
//!    shed as [`Rejected::DeadlineExpired`] at exactly `arrival +
//!    deadline`.
//! 3. **Health-based routing**: the daemon tracks a per-VM circuit
//!    breaker over committed sweep results (the same
//!    threshold/cooldown/half-open discipline as
//!    [`crate::monitor::ContinuousMonitor`]). Quarantined VMs are routed
//!    around: on-demand rescans exclude them from the scan set, and no
//!    fresh verdict ever names one — they appear only in the answer's
//!    `routed_around` list.
//! 4. **Degraded-answer fallback**: when a fresh answer cannot be
//!    produced inside the deadline (state too old, rescan too expensive,
//!    rescan failed, quorum lost) the daemon serves the last-known-good
//!    verdict stamped with its staleness and [`Confidence::Stale`]; with
//!    no last-known-good it still answers, typed
//!    [`Confidence::Unscannable`]. Every admitted query gets an answer at
//!    or before its deadline.
//!
//! # Time and determinism
//!
//! All clocks are [`SimDuration`] — nothing here reads wall time. The
//! event loop merges two planes:
//!
//! * the **refresh plane**: background [`FleetScheduler`] sweeps starting
//!   every [`ServeConfig::refresh_interval`], each completing (becoming
//!   visible to queries) one *modeled* wall later —
//!   [`crate::sched::simulated_fleet_wall`] at a fixed
//!   [`ServeConfig::refresh_lanes`], never the execution shard count;
//! * the **service plane**: a single logical FIFO server draining the
//!   admission queue, each query charged a flat
//!   [`ServeConfig::service_time`] lookup plus any on-demand rescan it
//!   affords within its deadline.
//!
//! Because arrivals are an input (seeded upstream, in `mc-loadgen`), the
//! queue drains in simulated time, and the refresh wall is a model
//! parameter, the resulting [`ServeReport`] is a pure function of
//! `(hypervisor state, fleet, queries, ServeConfig model knobs)`. The
//! execution knobs inside [`FleetConfig`] (`shards`,
//! `max_inflight_per_vm`) only reorder real computation whose results are
//! already proven byte-stable (DESIGN.md §11), so `ServeReport::to_json`
//! is byte-identical across worker counts — the same argument, one layer
//! up. DESIGN.md §13 spells it out.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap, HashMap, VecDeque};
use std::fmt;
use std::sync::{Mutex, PoisonError};

use mc_hypervisor::{Hypervisor, SimDuration, VmId};

use crate::error::CheckError;
use crate::events::{EventPlane, EventPlaneStats};
use crate::listdiff::ListDiff;
use crate::monitor::HealthPolicy;
use crate::pool::{CaptureCache, ModChecker};
use crate::report::{FleetReport, PoolCheckReport, QuorumStatus};
use crate::sched::{simulated_fleet_wall, Fleet, FleetConfig, FleetScheduler};

/// Per-tenant token-bucket admission quota.
///
/// A tenant's bucket refills continuously at `rate_per_sec` (of simulated
/// time) up to `burst` tokens; each admitted query spends one token. An
/// empty bucket rejects the query [`Rejected::QuotaExceeded`] without
/// consuming anything — the rejection is free for the server and typed
/// for the client.
#[derive(Clone, Copy, Debug)]
pub struct QuotaPolicy {
    /// Sustained admission rate, queries per simulated second.
    pub rate_per_sec: f64,
    /// Bucket capacity: the largest burst admitted at once.
    pub burst: f64,
}

impl Default for QuotaPolicy {
    fn default() -> Self {
        QuotaPolicy {
            rate_per_sec: 2_000.0,
            burst: 8.0,
        }
    }
}

/// Daemon configuration.
///
/// Everything except `fleet.shards` / `fleet.max_inflight_per_vm` is a
/// *model* knob and therefore part of the deterministic answer: two runs
/// differing in any model knob may legitimately differ byte-for-byte.
/// The two execution knobs must not change a single output byte — that is
/// the serve determinism contract, enforced by `tests/serve_sim.rs`.
#[derive(Clone, Copy, Debug)]
pub struct ServeConfig {
    /// Sweep/rescan configuration. `check` configures every scan the
    /// daemon runs; `shards`/`max_inflight_per_vm` are execution-only.
    pub fleet: FleetConfig,
    /// Admission queue bound (queries in flight, including the one being
    /// served). At capacity, arrivals are rejected [`Rejected::QueueFull`].
    pub queue_capacity: usize,
    /// Per-tenant token-bucket quota.
    pub quota: QuotaPolicy,
    /// Flat per-query lookup cost on the service plane (state read +
    /// answer assembly).
    pub service_time: SimDuration,
    /// Background sweep cadence. A sweep that outlives the interval
    /// delays the next one — the refresh plane never overlaps itself.
    pub refresh_interval: SimDuration,
    /// Modeled parallelism of the refresh plane: the sweep's visible
    /// completion lags its start by
    /// [`crate::sched::simulated_fleet_wall`] at this lane count. A model
    /// knob — never the execution shard count, which must not affect
    /// the report.
    pub refresh_lanes: usize,
    /// Maximum state age served as [`Confidence::Fresh`] without a
    /// rescan. Older state triggers an on-demand rescan when the deadline
    /// affords one, else degrades to [`Confidence::Stale`].
    pub freshness_window: SimDuration,
    /// Circuit-breaker policy for the daemon's per-VM health tracking
    /// (threshold of consecutive all-unscannable sweeps; cooldown counted
    /// in committed sweeps).
    pub health: HealthPolicy,
    /// Push mode: refresh sweeps consult the write-trap event plane
    /// (armed via [`AttestServer::arm_events`]) and serve quiet units from
    /// cache instead of re-reading guests. A model knob — verdicts are
    /// unchanged, only refresh cost and therefore timing shifts.
    pub events: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            fleet: FleetConfig::default(),
            queue_capacity: 16,
            quota: QuotaPolicy::default(),
            service_time: SimDuration::from_micros(20),
            refresh_interval: SimDuration::from_millis(25),
            refresh_lanes: 2,
            freshness_window: SimDuration::from_millis(30),
            health: HealthPolicy::default(),
            events: false,
        }
    }
}

/// One attestation request: "is `module` clean on `pool` right now?",
/// asked by `tenant` at simulated time `at`, answerable until `at +
/// deadline`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AttestQuery {
    /// Arrival time on the daemon's simulated clock.
    pub at: SimDuration,
    /// Tenant identity (quota accounting key).
    pub tenant: String,
    /// Target pool name.
    pub pool: String,
    /// Target module name.
    pub module: String,
    /// Answer budget, relative to `at`.
    pub deadline: SimDuration,
}

/// Why a query was rejected. Every rejection is typed and immediate —
/// the pipeline never drops a query silently.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Rejected {
    /// The tenant's token bucket was empty.
    QuotaExceeded,
    /// The admission queue was at capacity (backpressure).
    QueueFull,
    /// The query's turn came after its deadline; shed at exactly
    /// `arrival + deadline`.
    DeadlineExpired,
    /// No such pool, or no committed sweep of that pool has ever listed
    /// the module.
    UnknownTarget,
}

impl Rejected {
    /// Stable lowercase label (report JSON, metrics).
    pub fn as_str(self) -> &'static str {
        match self {
            Rejected::QuotaExceeded => "quota_exceeded",
            Rejected::QueueFull => "queue_full",
            Rejected::DeadlineExpired => "deadline_expired",
            Rejected::UnknownTarget => "unknown_target",
        }
    }
}

/// How much the served verdict can be trusted to describe *now*.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Confidence {
    /// Verdict from state no older than [`ServeConfig::freshness_window`],
    /// or from an on-demand rescan completed inside the deadline.
    Fresh,
    /// Last-known-good verdict, older than the freshness window; its age
    /// is stamped as `staleness`.
    Stale,
    /// No good verdict exists (the unit has never completed a
    /// quorate scan) — the answer carries no verdict at all.
    Unscannable,
}

impl Confidence {
    /// Stable lowercase label (report JSON, metrics).
    pub fn as_str(self) -> &'static str {
        match self {
            Confidence::Fresh => "fresh",
            Confidence::Stale => "stale",
            Confidence::Unscannable => "unscannable",
        }
    }
}

/// The attestation payload: one (pool, module) unit's verdict as the
/// daemon last learned it. Quarantined VMs are filtered out at stamping
/// time — a fresh verdict never names one.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UnitVerdict {
    /// No suspects, no static findings, quorum not lost.
    pub clean: bool,
    /// Voted-suspect VM names, scan order.
    pub suspects: Vec<String>,
    /// Statically flagged VM names, sorted.
    pub flagged: Vec<String>,
    /// Quorum status of the scan that produced this verdict.
    pub quorum: QuorumStatus,
}

fn quorum_str(q: QuorumStatus) -> &'static str {
    match q {
        QuorumStatus::Full => "full",
        QuorumStatus::Degraded => "degraded",
        QuorumStatus::Lost => "lost",
    }
}

/// Builds a [`UnitVerdict`] from a finished pool scan, routing around the
/// given quarantined VMs (they never contribute to a served verdict).
fn summarize(report: &PoolCheckReport, quarantined: &BTreeSet<String>) -> UnitVerdict {
    let suspects: Vec<String> = report
        .suspects()
        .map(|v| v.vm_name.clone())
        .filter(|n| !quarantined.contains(n))
        .collect();
    let flagged: Vec<String> = report
        .statically_flagged_vms()
        .iter()
        .filter(|n| !quarantined.contains(**n))
        .map(|n| (*n).to_string())
        .collect();
    UnitVerdict {
        clean: suspects.is_empty() && flagged.is_empty() && report.quorum != QuorumStatus::Lost,
        suspects,
        flagged,
        quorum: report.quorum,
    }
}

/// How one query left the pipeline.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Disposition {
    /// Served an answer (possibly degraded) at or before the deadline.
    Answered {
        /// Trust tier of the verdict.
        confidence: Confidence,
        /// The verdict; `None` only for [`Confidence::Unscannable`].
        verdict: Option<UnitVerdict>,
        /// Age of the served state at service start (zero for a
        /// same-query rescan).
        staleness: SimDuration,
        /// True when this query ran its own on-demand rescan.
        rescanned: bool,
        /// Quarantined pool VMs the answer was routed around.
        routed_around: Vec<String>,
    },
    /// Typed rejection.
    Rejected(Rejected),
}

/// One query's full account: identity, timing, and disposition.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ServedQuery {
    /// Index into the input query slice.
    pub seq: usize,
    /// Arrival time.
    pub at: SimDuration,
    /// Tenant identity.
    pub tenant: String,
    /// Target pool.
    pub pool: String,
    /// Target module.
    pub module: String,
    /// Answer budget, relative to `at`.
    pub deadline: SimDuration,
    /// Time from arrival to answer/rejection. Always `<= deadline`;
    /// zero for front-door rejections.
    pub latency: SimDuration,
    /// Outcome.
    pub disposition: Disposition,
}

impl ServedQuery {
    /// True when the query was answered (any confidence tier).
    pub fn answered(&self) -> bool {
        matches!(self.disposition, Disposition::Answered { .. })
    }
}

/// Per-tenant admission accounting (derived, stable order).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TenantStats {
    /// Queries this tenant sent.
    pub queries: usize,
    /// Queries answered (any confidence tier).
    pub answered: usize,
    /// Queries rejected at the quota gate.
    pub rejected_quota: usize,
    /// Queries rejected by queue backpressure.
    pub rejected_queue: usize,
    /// Queries shed at their deadline.
    pub rejected_expired: usize,
    /// Queries naming an unknown pool or module.
    pub rejected_unknown: usize,
}

/// The daemon's deterministic account of one serve run.
///
/// Like [`FleetReport`], the JSON form deliberately excludes anything
/// execution-dependent — runs differing only in `fleet.shards` /
/// `fleet.max_inflight_per_vm` serialize byte-identically.
#[derive(Clone, Debug)]
pub struct ServeReport {
    /// Every query's account, arrival order.
    pub queries: Vec<ServedQuery>,
    /// Background sweeps started (the last may not have committed).
    pub sweeps_started: usize,
    /// Background sweeps whose results became visible to queries.
    pub sweeps_committed: usize,
    /// On-demand rescans attempted by queries.
    pub rescans: usize,
    /// Rescans that failed, overran their budget, or lost quorum (the
    /// query then fell back to a degraded answer).
    pub rescan_failures: usize,
    /// High-water mark of queries in flight (served + queued).
    pub max_queue_depth: usize,
    /// Circuit-breaker trips observed while serving.
    pub quarantine_events: usize,
    /// Every VM ever quarantined during the run, sorted.
    pub quarantined_vms: Vec<String>,
    /// Service-plane busy time (lookups + rescans).
    pub service_busy: SimDuration,
    /// Refresh-plane busy time (modeled sweep walls).
    pub refresh_busy: SimDuration,
    /// Last simulated instant the run touched (arrival, answer, or
    /// commit — whichever is latest).
    pub horizon: SimDuration,
}

/// Nearest-rank percentile over an unsorted sample; `None` when empty.
fn percentile(samples: &mut [SimDuration], pct: f64) -> Option<SimDuration> {
    if samples.is_empty() {
        return None;
    }
    samples.sort_unstable();
    #[allow(clippy::cast_precision_loss, clippy::cast_sign_loss)]
    let rank = ((pct / 100.0) * samples.len() as f64).ceil() as usize;
    Some(samples[rank.clamp(1, samples.len()) - 1])
}

impl ServeReport {
    /// Queries answered, any confidence tier.
    pub fn answered(&self) -> usize {
        self.queries.iter().filter(|q| q.answered()).count()
    }

    /// Queries rejected, any reason.
    pub fn rejected(&self) -> usize {
        self.queries.len() - self.answered()
    }

    /// Answers at the given confidence tier.
    pub fn answered_at(&self, tier: Confidence) -> usize {
        self.queries
            .iter()
            .filter(
                |q| matches!(&q.disposition, Disposition::Answered { confidence, .. } if *confidence == tier),
            )
            .count()
    }

    /// Rejections for the given reason.
    pub fn rejected_for(&self, reason: Rejected) -> usize {
        self.queries
            .iter()
            .filter(|q| q.disposition == Disposition::Rejected(reason))
            .count()
    }

    /// Nearest-rank latency percentile over answered queries.
    pub fn latency_percentile(&self, pct: f64) -> Option<SimDuration> {
        let mut v: Vec<SimDuration> = self
            .queries
            .iter()
            .filter(|q| q.answered())
            .map(|q| q.latency)
            .collect();
        percentile(&mut v, pct)
    }

    /// Nearest-rank staleness percentile over answers that carried a
    /// verdict (Fresh and Stale tiers; Unscannable has nothing to date).
    pub fn staleness_percentile(&self, pct: f64) -> Option<SimDuration> {
        let mut v: Vec<SimDuration> = self
            .queries
            .iter()
            .filter_map(|q| match &q.disposition {
                Disposition::Answered {
                    verdict: Some(_),
                    staleness,
                    ..
                } => Some(*staleness),
                _ => None,
            })
            .collect();
        percentile(&mut v, pct)
    }

    /// Sustained answered-queries-per-simulated-second over the horizon.
    #[allow(clippy::cast_precision_loss)]
    pub fn answered_per_sec(&self) -> f64 {
        let secs = self.horizon.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.answered() as f64 / secs
    }

    /// Per-tenant accounting, tenant-name order.
    pub fn per_tenant(&self) -> BTreeMap<String, TenantStats> {
        let mut out: BTreeMap<String, TenantStats> = BTreeMap::new();
        for q in &self.queries {
            let t = out.entry(q.tenant.clone()).or_default();
            t.queries += 1;
            match &q.disposition {
                Disposition::Answered { .. } => t.answered += 1,
                Disposition::Rejected(Rejected::QuotaExceeded) => t.rejected_quota += 1,
                Disposition::Rejected(Rejected::QueueFull) => t.rejected_queue += 1,
                Disposition::Rejected(Rejected::DeadlineExpired) => t.rejected_expired += 1,
                Disposition::Rejected(Rejected::UnknownTarget) => t.rejected_unknown += 1,
            }
        }
        out
    }

    /// Machine-readable form (stable key order). Excludes everything
    /// execution-dependent: byte-identical across
    /// `fleet.shards`/`fleet.max_inflight_per_vm` settings.
    pub fn to_json(&self) -> serde_json::Value {
        let ms = |d: Option<SimDuration>| d.map(SimDuration::as_millis_f64);
        serde_json::json!({
            "queries_total": self.queries.len(),
            "answered": self.answered(),
            "answered_fresh": self.answered_at(Confidence::Fresh),
            "answered_stale": self.answered_at(Confidence::Stale),
            "answered_unscannable": self.answered_at(Confidence::Unscannable),
            "rejected": self.rejected(),
            "rejected_quota": self.rejected_for(Rejected::QuotaExceeded),
            "rejected_queue_full": self.rejected_for(Rejected::QueueFull),
            "rejected_expired": self.rejected_for(Rejected::DeadlineExpired),
            "rejected_unknown": self.rejected_for(Rejected::UnknownTarget),
            "sweeps_started": self.sweeps_started,
            "sweeps_committed": self.sweeps_committed,
            "rescans": self.rescans,
            "rescan_failures": self.rescan_failures,
            "max_queue_depth": self.max_queue_depth,
            "quarantine_events": self.quarantine_events,
            "quarantined_vms": self.quarantined_vms,
            "p50_latency_ms": ms(self.latency_percentile(50.0)),
            "p99_latency_ms": ms(self.latency_percentile(99.0)),
            "p99_staleness_ms": ms(self.staleness_percentile(99.0)),
            "answered_per_sec": self.answered_per_sec(),
            "service_busy_ms": self.service_busy.as_millis_f64(),
            "refresh_busy_ms": self.refresh_busy.as_millis_f64(),
            "horizon_ms": self.horizon.as_millis_f64(),
            "per_tenant": self
                .per_tenant()
                .iter()
                .map(|(name, t)| {
                    serde_json::json!({
                        "tenant": name,
                        "queries": t.queries,
                        "answered": t.answered,
                        "rejected_quota": t.rejected_quota,
                        "rejected_queue_full": t.rejected_queue,
                        "rejected_expired": t.rejected_expired,
                        "rejected_unknown": t.rejected_unknown,
                    })
                })
                .collect::<Vec<_>>(),
            "answers": self
                .queries
                .iter()
                .map(|q| {
                    let (outcome, staleness, verdict, rescanned, routed) = match &q.disposition {
                        Disposition::Answered {
                            confidence,
                            verdict,
                            staleness,
                            rescanned,
                            routed_around,
                        } => (
                            confidence.as_str().to_string(),
                            Some(staleness.as_millis_f64()),
                            verdict.as_ref(),
                            *rescanned,
                            routed_around.clone(),
                        ),
                        Disposition::Rejected(r) => {
                            (format!("rejected:{}", r.as_str()), None, None, false, Vec::new())
                        }
                    };
                    serde_json::json!({
                        "seq": q.seq,
                        "at_ms": q.at.as_millis_f64(),
                        "tenant": q.tenant,
                        "pool": q.pool,
                        "module": q.module,
                        "deadline_ms": q.deadline.as_millis_f64(),
                        "latency_ms": q.latency.as_millis_f64(),
                        "outcome": outcome,
                        "staleness_ms": staleness,
                        "clean": verdict.map(|v| v.clean),
                        "quorum": verdict.map(|v| quorum_str(v.quorum)),
                        "suspects": verdict.map(|v| v.suspects.clone()).unwrap_or_default(),
                        "flagged": verdict.map(|v| v.flagged.clone()).unwrap_or_default(),
                        "rescanned": rescanned,
                        "routed_around": routed,
                    })
                })
                .collect::<Vec<_>>(),
        })
    }
}

impl fmt::Display for ServeReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "serve: {} queries — {} answered ({} fresh, {} stale, {} unscannable), {} rejected",
            self.queries.len(),
            self.answered(),
            self.answered_at(Confidence::Fresh),
            self.answered_at(Confidence::Stale),
            self.answered_at(Confidence::Unscannable),
            self.rejected(),
        )?;
        writeln!(
            f,
            "  rejections: {} quota, {} queue-full, {} expired, {} unknown",
            self.rejected_for(Rejected::QuotaExceeded),
            self.rejected_for(Rejected::QueueFull),
            self.rejected_for(Rejected::DeadlineExpired),
            self.rejected_for(Rejected::UnknownTarget),
        )?;
        let fmt_ms = |d: Option<SimDuration>| {
            d.map_or_else(
                || "n/a".to_string(),
                |d| format!("{:.3} ms", d.as_millis_f64()),
            )
        };
        writeln!(
            f,
            "  latency p50 {} / p99 {}, staleness p99 {}, {:.0} answers/s",
            fmt_ms(self.latency_percentile(50.0)),
            fmt_ms(self.latency_percentile(99.0)),
            fmt_ms(self.staleness_percentile(99.0)),
            self.answered_per_sec(),
        )?;
        writeln!(
            f,
            "  refresh: {} sweeps ({} committed), {} rescans ({} degraded), max depth {}, {} quarantine trip(s)",
            self.sweeps_started,
            self.sweeps_committed,
            self.rescans,
            self.rescan_failures,
            self.max_queue_depth,
            self.quarantine_events,
        )
    }
}

/// Per-unit serving state: the last verdict worth serving and what it
/// cost to produce (the rescan admission estimate).
#[derive(Clone, Debug, Default)]
struct UnitState {
    last_good: Option<UnitVerdict>,
    last_good_at: SimDuration,
    last_cost: Option<SimDuration>,
}

/// Per-VM circuit breaker, counted in committed sweeps.
#[derive(Clone, Copy, Debug, Default)]
struct VmServeHealth {
    consecutive_unscannable: usize,
    cooldown_left: usize,
}

/// Token bucket with lazy refill on the simulated clock.
#[derive(Clone, Copy, Debug)]
struct TokenBucket {
    tokens: f64,
    refilled_at: SimDuration,
}

impl TokenBucket {
    fn admit(&mut self, now: SimDuration, quota: &QuotaPolicy) -> bool {
        let dt = (now - self.refilled_at).as_secs_f64();
        self.tokens = (self.tokens + dt * quota.rate_per_sec).min(quota.burst);
        self.refilled_at = now;
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }
}

/// Mutable run state of one [`AttestServer::run`] invocation.
struct RunState {
    units: HashMap<(String, String), UnitState>,
    catalog: BTreeMap<String, BTreeSet<String>>,
    health: BTreeMap<String, VmServeHealth>,
    buckets: HashMap<String, TokenBucket>,
    /// Slot-release times of queries in flight (min-heap, nanoseconds).
    in_flight: BinaryHeap<Reverse<u64>>,
    server_free: SimDuration,
    pending_sweeps: VecDeque<(SimDuration, FleetReport)>,
    refresh_cursor: SimDuration,
    /// Latency of the most recent `admit` call (answer or shed time).
    last_latency: SimDuration,
    report: ServeReport,
}

/// The attestation daemon. Construct once per deterministic run; the
/// internal [`FleetScheduler`] caches warm across sweeps *within* a run,
/// so replaying the same queries against a fresh server reproduces the
/// report exactly.
#[derive(Debug)]
pub struct AttestServer {
    config: ServeConfig,
    sched: FleetScheduler,
    /// Write-trap subscription state for push-mode refreshes; `Some` once
    /// [`AttestServer::arm_events`] ran and [`ServeConfig::events`] is set.
    events: Mutex<Option<EventPlane>>,
}

impl AttestServer {
    /// Builds a daemon with the given configuration.
    pub fn new(config: ServeConfig) -> Self {
        AttestServer {
            sched: FleetScheduler::new(config.fleet),
            config,
            events: Mutex::new(None),
        }
    }

    /// The configuration this daemon runs.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Arms write traps over every pool's consensus module set, enabling
    /// push-mode refreshes (with [`ServeConfig::events`] set). Returns the
    /// total guest frames watched.
    pub fn arm_events(&self, hv: &mut Hypervisor, fleet: &Fleet) -> Result<usize, CheckError> {
        let mut plane = EventPlane::new();
        let mut frames = 0usize;
        for pool in &fleet.pools {
            let listing = ListDiff::scan_with(hv, &pool.vms, self.config.fleet.check.fast_capture)?;
            frames += plane.arm_modules(hv, &pool.vms, &listing.consensus_modules)?;
        }
        *self.events.lock().unwrap_or_else(PoisonError::into_inner) = Some(plane);
        Ok(frames)
    }

    /// The event plane's cumulative counters, if armed.
    pub fn event_stats(&self) -> Option<EventPlaneStats> {
        self.events
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .as_ref()
            .map(EventPlane::stats)
    }

    /// Runs the event loop over `queries` (any order; processed by
    /// arrival time, input order breaking ties) and returns the
    /// deterministic account.
    pub fn run(&self, hv: &Hypervisor, fleet: &Fleet, queries: &[AttestQuery]) -> ServeReport {
        let pool_vms: BTreeMap<String, Vec<(String, VmId)>> = fleet
            .pools
            .iter()
            .map(|p| {
                let vms = p
                    .vms
                    .iter()
                    .filter_map(|&id| hv.vm(id).ok().map(|vm| (vm.name.clone(), id)))
                    .collect();
                (p.name.clone(), vms)
            })
            .collect();

        let mut order: Vec<usize> = (0..queries.len()).collect();
        order.sort_by_key(|&i| (queries[i].at, i));

        let mut st = RunState {
            units: HashMap::new(),
            catalog: BTreeMap::new(),
            health: BTreeMap::new(),
            buckets: HashMap::new(),
            in_flight: BinaryHeap::new(),
            server_free: SimDuration::ZERO,
            pending_sweeps: VecDeque::new(),
            refresh_cursor: SimDuration::ZERO,
            last_latency: SimDuration::ZERO,
            report: ServeReport {
                queries: Vec::with_capacity(queries.len()),
                sweeps_started: 0,
                sweeps_committed: 0,
                rescans: 0,
                rescan_failures: 0,
                max_queue_depth: 0,
                quarantine_events: 0,
                quarantined_vms: Vec::new(),
                service_busy: SimDuration::ZERO,
                refresh_busy: SimDuration::ZERO,
                horizon: SimDuration::ZERO,
            },
        };
        let mut rescan_caches: HashMap<String, CaptureCache> = HashMap::new();

        for seq in order {
            let q = &queries[seq];
            self.advance_refresh(hv, fleet, q.at, &mut st);
            self.commit_sweeps(q.at, &mut st);
            st.report.horizon = st.report.horizon.max(q.at);
            let disposition = self.admit(hv, q, &pool_vms, &mut rescan_caches, &mut st);
            st.report.queries.push(ServedQuery {
                seq,
                at: q.at,
                tenant: q.tenant.clone(),
                pool: q.pool.clone(),
                module: q.module.clone(),
                deadline: q.deadline,
                latency: st.last_latency,
                disposition,
            });
        }

        let mut report = st.report;
        report.quarantined_vms.sort_unstable();
        report.quarantined_vms.dedup();
        report
    }

    /// Starts every background sweep scheduled at or before `t`. Results
    /// become visible later, at their modeled completion time.
    fn advance_refresh(&self, hv: &Hypervisor, fleet: &Fleet, t: SimDuration, st: &mut RunState) {
        let step = self.config.refresh_interval.max(SimDuration::from_nanos(1));
        while st.refresh_cursor <= t {
            let started = st.refresh_cursor;
            let report = self.refresh_sweep(hv, fleet);
            let wall = simulated_fleet_wall(&report, self.config.refresh_lanes.max(1))
                .max(SimDuration::from_nanos(1));
            let done = started + wall;
            st.report.sweeps_started += 1;
            st.report.refresh_busy += wall;
            st.pending_sweeps.push_back((done, report));
            st.refresh_cursor = (started + step).max(done);
        }
    }

    /// One refresh sweep: push mode drains the event plane first and
    /// sweeps with quiet units trusted (the first sweep is cold — nothing
    /// cached — so push and pull start identically); pull mode is a plain
    /// [`FleetScheduler::sweep`].
    fn refresh_sweep(&self, hv: &Hypervisor, fleet: &Fleet) -> FleetReport {
        if self.config.events {
            let mut guard = self.events.lock().unwrap_or_else(PoisonError::into_inner);
            if let Some(plane) = guard.as_mut() {
                plane.drain(hv);
                let report = self.sched.sweep_with_trust(hv, fleet, Some(plane));
                plane.clear_dirty();
                return report;
            }
        }
        self.sched.sweep(hv, fleet)
    }

    /// Folds every sweep completed at or before `t` into the served
    /// state: health first (so verdicts are stamped against the *new*
    /// quarantine set), then per-unit verdicts and the module catalog.
    fn commit_sweeps(&self, t: SimDuration, st: &mut RunState) {
        while st
            .pending_sweeps
            .front()
            .is_some_and(|(done, _)| *done <= t)
        {
            let (done, sweep) = st.pending_sweeps.pop_front().expect("checked non-empty");
            st.report.sweeps_committed += 1;
            st.report.horizon = st.report.horizon.max(done);
            self.update_health(&sweep, st);
            let quarantined: BTreeSet<String> = st
                .health
                .iter()
                .filter(|(_, h)| h.cooldown_left > 0)
                .map(|(name, _)| name.clone())
                .collect();
            for pool in &sweep.pools {
                let catalog = st.catalog.entry(pool.pool.clone()).or_default();
                for unit in &pool.units {
                    catalog.insert(unit.module.clone());
                    let Ok(r) = &unit.result else { continue };
                    let state = st
                        .units
                        .entry((pool.pool.clone(), unit.module.clone()))
                        .or_default();
                    state.last_cost = Some(unit.duration());
                    // A lost-quorum scan is not a *good* verdict: keep
                    // serving the previous one (degraded), don't
                    // overwrite it.
                    if r.quorum != QuorumStatus::Lost {
                        state.last_good = Some(summarize(r, &quarantined));
                        state.last_good_at = done;
                    }
                }
            }
        }
    }

    /// Advances every VM's circuit breaker by one committed sweep: VMs
    /// unscannable in *all* of their pool's completed units count a
    /// failure; `threshold` consecutive failures trip quarantine for
    /// `cooldown` sweeps; expiry re-probes half-open (one more failure
    /// re-trips immediately).
    fn update_health(&self, sweep: &FleetReport, st: &mut RunState) {
        let threshold = self.config.health.failure_threshold.max(1);
        let cooldown = self.config.health.cooldown_rounds.max(1);
        for pool in &sweep.pools {
            let ok_units: Vec<&PoolCheckReport> = pool
                .units
                .iter()
                .filter_map(|u| u.result.as_ref().ok())
                .collect();
            if ok_units.is_empty() {
                continue;
            }
            for vm_name in &pool.vm_names {
                let failed = ok_units
                    .iter()
                    .all(|r| r.unscannable().any(|v| &v.vm_name == vm_name));
                let h = st.health.entry(vm_name.clone()).or_default();
                if h.cooldown_left > 0 {
                    h.cooldown_left -= 1;
                    if h.cooldown_left == 0 {
                        // Half-open: the next failure re-trips at once.
                        h.consecutive_unscannable = threshold - 1;
                    }
                    continue;
                }
                if failed {
                    h.consecutive_unscannable += 1;
                    if h.consecutive_unscannable >= threshold {
                        h.cooldown_left = cooldown;
                        h.consecutive_unscannable = 0;
                        st.report.quarantine_events += 1;
                        st.report.quarantined_vms.push(vm_name.clone());
                    }
                } else {
                    h.consecutive_unscannable = 0;
                }
            }
        }
    }

    /// Runs one arrival through catalog → quota → queue → service.
    /// Returns the disposition; the answer latency lands in
    /// `st.last_latency`.
    fn admit(
        &self,
        hv: &Hypervisor,
        q: &AttestQuery,
        pool_vms: &BTreeMap<String, Vec<(String, VmId)>>,
        rescan_caches: &mut HashMap<String, CaptureCache>,
        st: &mut RunState,
    ) -> Disposition {
        st.last_latency = SimDuration::ZERO;

        // Stage 1a: catalog. Unknown pools are rejected outright; known
        // pools reject modules absent from every committed sweep (before
        // the first commit the catalog is empty and the daemon gives the
        // module the benefit of the doubt — the answer degrades to
        // Unscannable downstream instead).
        if !pool_vms.contains_key(&q.pool) {
            return Disposition::Rejected(Rejected::UnknownTarget);
        }
        if let Some(known) = st.catalog.get(&q.pool) {
            if !known.contains(&q.module) {
                return Disposition::Rejected(Rejected::UnknownTarget);
            }
        }

        // Stage 1b: per-tenant quota.
        let bucket = st.buckets.entry(q.tenant.clone()).or_insert(TokenBucket {
            tokens: self.config.quota.burst,
            refilled_at: SimDuration::ZERO,
        });
        if !bucket.admit(q.at, &self.config.quota) {
            return Disposition::Rejected(Rejected::QuotaExceeded);
        }

        // Stage 2: bounded admission queue. Queries whose slot-release
        // time has passed have left the system.
        while st
            .in_flight
            .peek()
            .is_some_and(|Reverse(ns)| *ns <= q.at.as_nanos())
        {
            st.in_flight.pop();
        }
        if st.in_flight.len() >= self.config.queue_capacity.max(1) {
            return Disposition::Rejected(Rejected::QueueFull);
        }

        let expiry = q.at + q.deadline;
        let start = q.at.max(st.server_free);
        if start >= expiry {
            // Shed in queue at exactly the deadline; the slot is held
            // until then.
            st.in_flight.push(Reverse(expiry.as_nanos()));
            st.report.max_queue_depth = st.report.max_queue_depth.max(st.in_flight.len());
            st.last_latency = q.deadline;
            st.report.horizon = st.report.horizon.max(expiry);
            return Disposition::Rejected(Rejected::DeadlineExpired);
        }

        // Stage 3 + 4: route and serve.
        let quarantined: BTreeSet<String> = pool_vms[&q.pool]
            .iter()
            .filter(|(name, _)| st.health.get(name).is_some_and(|h| h.cooldown_left > 0))
            .map(|(name, _)| name.clone())
            .collect();
        let routed_around: Vec<String> = quarantined.iter().cloned().collect();
        let key = (q.pool.clone(), q.module.clone());
        let state = st.units.get(&key).cloned().unwrap_or_default();
        let age = start - state.last_good_at;

        let cheap_done = (start + self.config.service_time).min(expiry);
        let (disposition, completion) =
            if state.last_good.is_some() && age <= self.config.freshness_window {
                (
                    Disposition::Answered {
                        confidence: Confidence::Fresh,
                        verdict: state.last_good.clone(),
                        staleness: age,
                        rescanned: false,
                        routed_around,
                    },
                    cheap_done,
                )
            } else {
                // Too old (or never scanned): afford a rescan?
                let budget = expiry - (start + self.config.service_time);
                let active: Vec<VmId> = pool_vms[&q.pool]
                    .iter()
                    .filter(|(name, _)| !quarantined.contains(name))
                    .map(|(_, id)| *id)
                    .collect();
                let affordable = budget > SimDuration::ZERO
                    && active.len() >= 2
                    && state.last_cost.is_none_or(|c| c <= budget);
                if affordable {
                    st.report.rescans += 1;
                    let mut check = self.config.fleet.check;
                    // Deadline propagation: every per-VM session of this
                    // rescan inherits the query's remaining budget.
                    check.deadline = Some(budget);
                    let checker = ModChecker::with_config(check);
                    let cache = rescan_caches.entry(q.pool.clone()).or_default();
                    match checker.check_pool_with_cache(hv, &active, &q.module, cache) {
                        Ok(r) if r.quorum != QuorumStatus::Lost => {
                            let cost = r.times.total();
                            let raw = start + self.config.service_time + cost;
                            if raw <= expiry {
                                let verdict = summarize(&r, &quarantined);
                                let s = st.units.entry(key).or_default();
                                s.last_good = Some(verdict.clone());
                                s.last_good_at = raw;
                                s.last_cost = Some(cost);
                                (
                                    Disposition::Answered {
                                        confidence: Confidence::Fresh,
                                        verdict: Some(verdict),
                                        staleness: SimDuration::ZERO,
                                        rescanned: true,
                                        routed_around,
                                    },
                                    raw,
                                )
                            } else {
                                st.report.rescan_failures += 1;
                                (fallback(&state, expiry, true, routed_around), expiry)
                            }
                        }
                        _ => {
                            // Scan failed or lost quorum: the attempt burned
                            // the budget; serve degraded at the deadline.
                            st.report.rescan_failures += 1;
                            (fallback(&state, expiry, true, routed_around), expiry)
                        }
                    }
                } else {
                    (
                        fallback(&state, cheap_done, false, routed_around),
                        cheap_done,
                    )
                }
            };

        st.in_flight.push(Reverse(completion.as_nanos()));
        st.report.max_queue_depth = st.report.max_queue_depth.max(st.in_flight.len());
        st.report.service_busy += completion - start;
        st.server_free = completion;
        st.report.horizon = st.report.horizon.max(completion);
        st.last_latency = completion - q.at;
        disposition
    }
}

/// Degraded answer: last-known-good (Stale, stamped with its age at
/// `served_at`) or, with nothing to serve, a typed Unscannable.
fn fallback(
    state: &UnitState,
    served_at: SimDuration,
    rescanned: bool,
    routed_around: Vec<String>,
) -> Disposition {
    match &state.last_good {
        Some(v) => Disposition::Answered {
            confidence: Confidence::Stale,
            verdict: Some(v.clone()),
            staleness: served_at - state.last_good_at,
            rescanned,
            routed_around,
        },
        None => Disposition::Answered {
            confidence: Confidence::Unscannable,
            verdict: None,
            staleness: SimDuration::ZERO,
            rescanned,
            routed_around,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::PoolSpec;
    use mc_guest::build_cloud_with_modules;
    use mc_hypervisor::AddressWidth;
    use mc_pe::corpus::ModuleBlueprint;

    /// One pool, `n` VMs, one 8 KiB module `hal.dll`.
    fn bed(n: usize) -> (Hypervisor, Fleet) {
        let mut hv = Hypervisor::new();
        let bps = vec![ModuleBlueprint::new("hal.dll", AddressWidth::W32, 8 * 1024)];
        let guests = build_cloud_with_modules(&mut hv, n, AddressWidth::W32, &bps).unwrap();
        let fleet = Fleet::from_pools(vec![PoolSpec {
            name: "pool0".to_string(),
            vms: guests.iter().map(|g| g.vm).collect(),
        }]);
        (hv, fleet)
    }

    fn q(at: SimDuration, tenant: &str, module: &str, deadline: SimDuration) -> AttestQuery {
        AttestQuery {
            at,
            tenant: tenant.to_string(),
            pool: "pool0".to_string(),
            module: module.to_string(),
            deadline,
        }
    }

    #[test]
    fn percentile_is_nearest_rank() {
        let mut v: Vec<SimDuration> = (1..=100).map(SimDuration::from_millis).collect();
        assert_eq!(percentile(&mut v, 50.0), Some(SimDuration::from_millis(50)));
        assert_eq!(percentile(&mut v, 99.0), Some(SimDuration::from_millis(99)));
        assert_eq!(
            percentile(&mut v, 100.0),
            Some(SimDuration::from_millis(100))
        );
        let mut one = vec![SimDuration::from_millis(7)];
        assert_eq!(
            percentile(&mut one, 50.0),
            Some(SimDuration::from_millis(7))
        );
        assert_eq!(percentile(&mut [], 99.0), None);
    }

    #[test]
    fn quota_gate_rejects_the_burst_overflow() {
        let (hv, fleet) = bed(3);
        let cfg = ServeConfig {
            queue_capacity: 64,
            ..ServeConfig::default()
        };
        let burst = cfg.quota.burst as usize;
        let queries: Vec<AttestQuery> = (0..burst + 12)
            .map(|_| {
                q(
                    SimDuration::ZERO,
                    "tenant0",
                    "hal.dll",
                    SimDuration::from_millis(500),
                )
            })
            .collect();
        let report = AttestServer::new(cfg).run(&hv, &fleet, &queries);
        assert_eq!(report.rejected_for(Rejected::QuotaExceeded), 12);
        assert_eq!(report.answered(), burst);
        // Typed, instant rejections: zero latency, no silent drops.
        for sq in report.queries.iter().filter(|s| !s.answered()) {
            assert_eq!(sq.latency, SimDuration::ZERO);
        }
    }

    #[test]
    fn token_bucket_refills_on_the_simulated_clock() {
        let (hv, fleet) = bed(3);
        let cfg = ServeConfig {
            quota: QuotaPolicy {
                rate_per_sec: 1_000.0, // one token per simulated ms
                burst: 1.0,
            },
            queue_capacity: 64,
            ..ServeConfig::default()
        };
        let d = SimDuration::from_millis(400);
        let queries = vec![
            q(SimDuration::ZERO, "t", "hal.dll", d),
            q(SimDuration::from_micros(500), "t", "hal.dll", d),
            q(SimDuration::from_micros(1_600), "t", "hal.dll", d),
        ];
        let report = AttestServer::new(cfg).run(&hv, &fleet, &queries);
        assert!(report.queries[0].answered(), "burst token");
        assert_eq!(
            report.queries[1].disposition,
            Disposition::Rejected(Rejected::QuotaExceeded),
            "bucket refills 0.5 tokens in 500µs"
        );
        assert!(report.queries[2].answered(), "refilled after 1.6ms");
    }

    #[test]
    fn queue_backpressure_is_typed_and_bounded() {
        let (hv, fleet) = bed(3);
        let cfg = ServeConfig {
            queue_capacity: 2,
            quota: QuotaPolicy {
                rate_per_sec: 1e9,
                burst: 1e9,
            },
            service_time: SimDuration::from_millis(5),
            freshness_window: SimDuration::from_millis(10_000),
            refresh_interval: SimDuration::from_millis(5),
            ..ServeConfig::default()
        };
        // Arrive well after the first sweep committed, so every answer is
        // a cheap fresh lookup (no rescans muddying the service times).
        let t0 = SimDuration::from_millis(40);
        let queries: Vec<AttestQuery> = (0..10)
            .map(|_| q(t0, "t", "hal.dll", SimDuration::from_millis(200)))
            .collect();
        let report = AttestServer::new(cfg).run(&hv, &fleet, &queries);
        assert_eq!(report.answered(), 2, "two in flight at capacity 2");
        assert_eq!(report.rejected_for(Rejected::QueueFull), 8);
        assert_eq!(report.max_queue_depth, 2);
    }

    #[test]
    fn late_turns_are_shed_at_exactly_the_deadline() {
        let (hv, fleet) = bed(3);
        let cfg = ServeConfig {
            queue_capacity: 64,
            quota: QuotaPolicy {
                rate_per_sec: 1e9,
                burst: 1e9,
            },
            service_time: SimDuration::from_millis(5),
            freshness_window: SimDuration::from_millis(10_000),
            refresh_interval: SimDuration::from_millis(5),
            ..ServeConfig::default()
        };
        let t0 = SimDuration::from_millis(40);
        let d = SimDuration::from_millis(8);
        let queries: Vec<AttestQuery> = (0..3).map(|_| q(t0, "t", "hal.dll", d)).collect();
        let report = AttestServer::new(cfg).run(&hv, &fleet, &queries);
        assert!(report.queries[0].answered());
        assert!(report.queries[1].answered(), "clamped to its deadline");
        assert_eq!(
            report.queries[2].disposition,
            Disposition::Rejected(Rejected::DeadlineExpired)
        );
        assert_eq!(
            report.queries[2].latency, d,
            "shed at exactly arrival+deadline"
        );
        for sq in &report.queries {
            assert!(sq.latency <= sq.deadline);
        }
    }

    #[test]
    fn unknown_pool_and_unknown_module_are_typed() {
        let (hv, fleet) = bed(3);
        let cfg = ServeConfig {
            refresh_interval: SimDuration::from_millis(5),
            ..ServeConfig::default()
        };
        let mut bad_pool = q(
            SimDuration::from_millis(40),
            "t",
            "hal.dll",
            SimDuration::from_millis(100),
        );
        bad_pool.pool = "nope".to_string();
        let bad_module = q(
            SimDuration::from_millis(40),
            "t",
            "ghost.sys",
            SimDuration::from_millis(100),
        );
        let report = AttestServer::new(cfg).run(&hv, &fleet, &[bad_pool, bad_module]);
        assert_eq!(report.rejected_for(Rejected::UnknownTarget), 2);
        assert_eq!(report.answered(), 0);
    }

    #[test]
    fn stale_state_degrades_with_a_staleness_stamp() {
        let (hv, fleet) = bed(3);
        let cfg = ServeConfig {
            freshness_window: SimDuration::from_nanos(1),
            // Only the priming sweep ever runs before the query.
            refresh_interval: SimDuration::from_millis(10_000),
            ..ServeConfig::default()
        };
        // Tiny deadline: the committed unit cost makes a rescan
        // unaffordable, forcing the last-known-good fallback.
        let report = AttestServer::new(cfg).run(
            &hv,
            &fleet,
            &[q(
                SimDuration::from_millis(40),
                "t",
                "hal.dll",
                SimDuration::from_micros(100),
            )],
        );
        let Disposition::Answered {
            confidence,
            verdict,
            staleness,
            rescanned,
            ..
        } = &report.queries[0].disposition
        else {
            panic!(
                "expected an answer, got {:?}",
                report.queries[0].disposition
            );
        };
        assert_eq!(*confidence, Confidence::Stale);
        assert!(!rescanned);
        assert!(verdict.as_ref().is_some_and(|v| v.clean));
        assert!(
            *staleness > SimDuration::from_millis(30),
            "aged since the priming sweep"
        );
        assert_eq!(report.rescans, 0);
    }

    #[test]
    fn fresh_rescan_answers_inside_the_deadline() {
        let (hv, fleet) = bed(3);
        let cfg = ServeConfig {
            freshness_window: SimDuration::from_nanos(1),
            refresh_interval: SimDuration::from_millis(10_000),
            ..ServeConfig::default()
        };
        let report = AttestServer::new(cfg).run(
            &hv,
            &fleet,
            &[q(
                SimDuration::from_millis(40),
                "t",
                "hal.dll",
                SimDuration::from_millis(200),
            )],
        );
        let Disposition::Answered {
            confidence,
            staleness,
            rescanned,
            ..
        } = &report.queries[0].disposition
        else {
            panic!("expected an answer");
        };
        assert_eq!(*confidence, Confidence::Fresh);
        assert!(rescanned);
        assert_eq!(*staleness, SimDuration::ZERO);
        assert_eq!(report.rescans, 1);
        assert_eq!(report.rescan_failures, 0);
    }

    #[test]
    fn report_bytes_are_identical_across_execution_knobs() {
        let (hv, fleet) = bed(4);
        let queries: Vec<AttestQuery> = (0..24)
            .map(|i| {
                q(
                    SimDuration::from_micros(i * 700),
                    &format!("tenant{}", i % 3),
                    "hal.dll",
                    SimDuration::from_millis(4),
                )
            })
            .collect();
        let mut renders = Vec::new();
        for (shards, inflight) in [(1usize, 1usize), (4, 2), (8, 4)] {
            let mut cfg = ServeConfig {
                refresh_interval: SimDuration::from_millis(5),
                ..ServeConfig::default()
            };
            cfg.fleet.shards = shards;
            cfg.fleet.max_inflight_per_vm = inflight;
            let report = AttestServer::new(cfg).run(&hv, &fleet, &queries);
            renders.push(serde_json::to_string_pretty(&report.to_json()).unwrap());
        }
        assert_eq!(renders[0], renders[1], "shards must not change a byte");
        assert_eq!(renders[0], renders[2], "inflight must not change a byte");
    }

    #[test]
    fn push_mode_answers_match_pull_and_cut_refresh_cost() {
        let (mut hv, fleet) = bed(4);
        let queries: Vec<AttestQuery> = (0..12)
            .map(|i| {
                q(
                    SimDuration::from_millis(30 + i * 10),
                    "t",
                    "hal.dll",
                    SimDuration::from_millis(8),
                )
            })
            .collect();

        let pull_cfg = ServeConfig {
            refresh_interval: SimDuration::from_millis(5),
            ..ServeConfig::default()
        };
        let pull = AttestServer::new(pull_cfg).run(&hv, &fleet, &queries);

        let push_cfg = ServeConfig {
            events: true,
            ..pull_cfg
        };
        let server = AttestServer::new(push_cfg);
        let frames = server.arm_events(&mut hv, &fleet).unwrap();
        assert!(frames > 0);
        let push = server.run(&hv, &fleet, &queries);

        // Same verdict content on every answer (timing may differ — push
        // refreshes are cheaper, so staleness/latency can only improve).
        let verdicts = |r: &ServeReport| -> Vec<Option<(bool, Vec<String>)>> {
            r.queries
                .iter()
                .map(|sq| match &sq.disposition {
                    Disposition::Answered { verdict, .. } => {
                        verdict.as_ref().map(|v| (v.clean, v.suspects.clone()))
                    }
                    Disposition::Rejected(_) => None,
                })
                .collect()
        };
        assert_eq!(verdicts(&pull), verdicts(&push));
        assert_eq!(pull.answered(), push.answered());
        assert!(
            push.refresh_busy < pull.refresh_busy,
            "quiet sweeps must be cheaper: push {} vs pull {}",
            push.refresh_busy,
            pull.refresh_busy
        );
        assert!(server.event_stats().is_some());
    }

    #[test]
    fn every_query_is_accounted_and_in_deadline() {
        let (hv, fleet) = bed(3);
        let cfg = ServeConfig {
            refresh_interval: SimDuration::from_millis(5),
            ..ServeConfig::default()
        };
        let queries: Vec<AttestQuery> = (0..40)
            .map(|i| {
                q(
                    SimDuration::from_micros(i * 300),
                    &format!("tenant{}", i % 2),
                    "hal.dll",
                    SimDuration::from_millis(2),
                )
            })
            .collect();
        let report = AttestServer::new(cfg).run(&hv, &fleet, &queries);
        assert_eq!(report.queries.len(), queries.len());
        assert_eq!(report.answered() + report.rejected(), queries.len());
        for sq in &report.queries {
            assert!(sq.latency <= sq.deadline, "{sq:?}");
        }
        let tenants = report.per_tenant();
        assert_eq!(
            tenants.values().map(|t| t.queries).sum::<usize>(),
            queries.len()
        );
    }
}
