//! Check reports: per-pair outcomes, majority verdicts, component timing,
//! and — since the chaos work — quorum accounting: a pool scan reports how
//! many VMs it could actually vote over, and each verdict distinguishes
//! *unscannable* (the VM vanished / timed out) from *infected*.

use std::fmt;

use mc_hypervisor::SimDuration;

use crate::checker::PairOutcome;
use crate::error::CheckError;
use crate::parts::PartId;

/// Coarse classification of why a VM produced no comparable capture.
///
/// The kind — not the human-readable detail — is what degradation logic
/// keys on: [`VerdictErrorKind::is_unscannable`] kinds exclude the VM from
/// the vote (it says nothing about integrity), while the rest are
/// integrity signals in their own right (a module that is hidden or
/// unparseable *here* but fine elsewhere is suspicious).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VerdictErrorKind {
    /// The module is not in this VM's loaded-module list (present on
    /// peers — the DKOM-hiding signal).
    ModuleNotFound,
    /// The VM itself is out of reach: lost mid-scan, paused past the
    /// retry budget, or gone from the host.
    VmUnreachable,
    /// The VM was reachable but the capture failed structurally: corrupt
    /// list, bad PE, implausible size, unmapped or hopelessly torn pages.
    CaptureFailed,
    /// The per-session simulated-time deadline expired mid-capture.
    Deadline,
}

impl VerdictErrorKind {
    /// True when the error says "could not scan", not "looks infected":
    /// the VM must be excluded from the vote rather than counted against
    /// anyone.
    pub fn is_unscannable(self) -> bool {
        matches!(
            self,
            VerdictErrorKind::VmUnreachable | VerdictErrorKind::Deadline
        )
    }

    /// Stable lowercase name (used in JSON output).
    pub fn as_str(self) -> &'static str {
        match self {
            VerdictErrorKind::ModuleNotFound => "module_not_found",
            VerdictErrorKind::VmUnreachable => "vm_unreachable",
            VerdictErrorKind::CaptureFailed => "capture_failed",
            VerdictErrorKind::Deadline => "deadline",
        }
    }
}

impl fmt::Display for VerdictErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A typed per-VM extraction error: machine-matchable kind plus the
/// original error text for humans.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VerdictError {
    /// What class of failure this was.
    pub kind: VerdictErrorKind,
    /// Human-readable description (the underlying error's display form).
    pub detail: String,
}

impl VerdictError {
    /// Classifies a [`CheckError`] into a verdict error.
    pub fn classify(e: &CheckError) -> Self {
        use mc_hypervisor::HvError;
        use mc_vmi::VmiError;
        let kind = match e {
            CheckError::ModuleNotFound { .. } => VerdictErrorKind::ModuleNotFound,
            CheckError::Vmi(VmiError::DeadlineExceeded { .. }) => VerdictErrorKind::Deadline,
            CheckError::Vmi(
                VmiError::VmNotFound(_)
                | VmiError::RetriesExhausted { .. }
                | VmiError::Hv(HvError::VmLost(_) | HvError::VmPaused(_) | HvError::UnknownVm(_)),
            ) => VerdictErrorKind::VmUnreachable,
            _ => VerdictErrorKind::CaptureFailed,
        };
        VerdictError {
            kind,
            detail: e.to_string(),
        }
    }
}

impl fmt::Display for VerdictError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.kind, self.detail)
    }
}

/// Tri-state per-VM verdict.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VerdictStatus {
    /// Scanned and matched a majority of the other scanned VMs.
    Clean,
    /// Scanned and mismatched the majority — or produced an
    /// integrity-signal error (hidden module, corrupt capture).
    Suspect,
    /// Could not be scanned (VM unreachable / deadline) or the quorum was
    /// lost — says nothing about this VM's integrity either way.
    Unscannable,
}

impl VerdictStatus {
    /// Stable uppercase name (used in text and JSON output).
    pub fn as_str(self) -> &'static str {
        match self {
            VerdictStatus::Clean => "CLEAN",
            VerdictStatus::Suspect => "SUSPECT",
            VerdictStatus::Unscannable => "UNSCANNABLE",
        }
    }
}

impl fmt::Display for VerdictStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// How much of the pool the vote actually covered.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QuorumStatus {
    /// Every VM in the pool was scanned.
    Full,
    /// Some VMs dropped out but at least `min_quorum` were scanned; the
    /// vote ran over the survivors.
    Degraded,
    /// Fewer than `min_quorum` VMs could be scanned; no verdict carries
    /// voting weight.
    Lost,
}

impl QuorumStatus {
    /// Stable lowercase name (used in JSON output).
    pub fn as_str(self) -> &'static str {
        match self {
            QuorumStatus::Full => "full",
            QuorumStatus::Degraded => "degraded",
            QuorumStatus::Lost => "lost",
        }
    }
}

impl fmt::Display for QuorumStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Simulated time attributed to each ModChecker component (the split the
/// paper plots in Figures 7 and 8).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ComponentTimes {
    /// Module-Searcher: symbol resolution, list walk, page-wise copy.
    pub searcher: SimDuration,
    /// Module-Parser: header/section extraction.
    pub parser: SimDuration,
    /// Integrity-Checker: RVA adjustment and hashing.
    pub checker: SimDuration,
}

impl ComponentTimes {
    /// Sum of all components.
    pub fn total(&self) -> SimDuration {
        self.searcher + self.parser + self.checker
    }

    /// Component-wise addition.
    pub fn accumulate(&mut self, other: &ComponentTimes) {
        self.searcher += other.searcher;
        self.parser += other.parser;
        self.checker += other.checker;
    }
}

impl fmt::Display for ComponentTimes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "searcher {} | parser {} | checker {} | total {}",
            self.searcher,
            self.parser,
            self.checker,
            self.total()
        )
    }
}

/// One VM's scan-cost breakdown from a pool check: where its simulated
/// time went and what introspection work it took. These are the span/metric
/// inputs the observability layer (`mc-obs`) renders; they are deterministic
/// per (fault seed, VM) and therefore identical across scan modes.
#[derive(Clone, Debug, Default)]
pub struct VmScanStats {
    /// VM name.
    pub vm_name: String,
    /// Component time split for this VM's capture (searcher/parser/checker;
    /// the checker share here is header hashing only — pairwise voting time
    /// is pool-level, not per-VM).
    pub times: ComponentTimes,
    /// Introspection counters from this VM's session (reads, pages mapped,
    /// retries, torn detections, stability re-reads...).
    pub vmi: mc_vmi::VmiStats,
    /// Anomalies the fault layer injected into this VM's session.
    pub fault_injections: u64,
}

/// Verdict for one VM from a full pool check.
#[derive(Clone, Debug)]
pub struct VmVerdict {
    /// Scan-time VM id. Remediation reverts and evicts by this id, not by
    /// re-resolving `vm_name` — a rename (or a new VM taking the old name)
    /// between scan and remediation must not redirect the revert or leave
    /// a stale capture alive. Not serialized: ids are host-local.
    pub vm: mc_hypervisor::VmId,
    /// VM name.
    pub vm_name: String,
    /// Tri-state verdict (drives [`PoolCheckReport::suspects`] /
    /// [`PoolCheckReport::unscannable`]).
    pub status: VerdictStatus,
    /// Comparisons in which every part hash matched.
    pub successes: usize,
    /// Comparisons this VM participated in: `scanned − 1` for scanned VMs
    /// (the vote runs only among reachable captures), 0 for VMs that
    /// produced no capture.
    pub comparisons: usize,
    /// Majority rule over the scanned population:
    /// `successes > comparisons / 2` (the paper's `n > (t−1)/2`).
    /// Equivalent to `status == VerdictStatus::Clean`.
    pub clean: bool,
    /// Union of mismatched parts across this VM's failed comparisons.
    pub suspect_parts: Vec<PartId>,
    /// Extraction error on this VM itself, if any. Whether it is an
    /// integrity signal or mere unreachability is the
    /// [`VerdictError::kind`]'s call.
    pub error: Option<VerdictError>,
}

impl fmt::Display for VmVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<8} {} ({}/{} matches)",
            self.vm_name, self.status, self.successes, self.comparisons
        )?;
        if let Some(e) = &self.error {
            write!(f, " [error: {e}]")?;
        }
        if !self.suspect_parts.is_empty() {
            write!(f, " mismatched: ")?;
            for (i, p) in self.suspect_parts.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{p}")?;
            }
        }
        Ok(())
    }
}

/// Report from checking one VM's module against the rest of the pool —
/// the paper's primary operation.
#[derive(Clone, Debug)]
pub struct ModuleCheckReport {
    /// Module under check.
    pub module: String,
    /// The VM whose module was checked.
    pub reference: String,
    /// Pairwise outcomes against each peer that yielded a comparable
    /// capture.
    pub outcomes: Vec<PairOutcome>,
    /// Peers whose capture failed (`(vm, error)`). Integrity-signal
    /// failures (hidden module, corrupt capture) count as failed
    /// comparisons; unreachable peers are excluded from the vote.
    pub errors: Vec<(String, VerdictError)>,
    /// Matching comparisons (`n` in the paper).
    pub successes: usize,
    /// Total comparisons the vote ran over (`t − 1` when every peer is
    /// reachable; unreachable peers don't count).
    pub comparisons: usize,
    /// `n > (t−1)/2`.
    pub clean: bool,
    /// VMs (reference + peers) that produced a comparable capture.
    pub scanned: usize,
    /// Whether the vote covered the whole pool, a degraded majority, or
    /// too few VMs to mean anything.
    pub quorum: QuorumStatus,
    /// Aggregate component times over the whole run.
    pub times: ComponentTimes,
    /// Per-VM component times, in scan order (reference first).
    pub per_vm_times: Vec<(String, ComponentTimes)>,
    /// Aggregate introspection counters across every per-VM session.
    pub vmi: mc_vmi::VmiStats,
    /// Total fault-layer anomalies injected across every per-VM session.
    pub fault_injections: u64,
    /// Non-clean single-VM static analysis reports, one per flagged VM
    /// (populated when [`crate::pool::CheckConfig::static_prepass`] is on).
    /// Orthogonal to the vote: these findings name the infected VM even
    /// when the majority is compromised.
    pub static_findings: Vec<mc_analysis::AnalysisReport>,
}

impl ModuleCheckReport {
    /// Parts that mismatched in any comparison (what an operator would
    /// escalate on).
    pub fn suspect_parts(&self) -> Vec<PartId> {
        let mut out: Vec<PartId> = self
            .outcomes
            .iter()
            .flat_map(|o| o.mismatched.iter().cloned())
            .collect();
        out.sort();
        out.dedup();
        out
    }

    /// Simulated wall-clock for the sequential scanner (sum of all work;
    /// the configuration the paper benchmarks).
    pub fn simulated_wall_sequential(&self) -> SimDuration {
        self.times.total()
    }

    /// Simulated wall-clock for the parallel scanner with `workers` Dom0
    /// threads: per-VM capture+parse runs concurrently (bounded by
    /// workers), pairwise checking divides across workers. An idealized
    /// model for ablation ABL-1 — the real parallel speedup is measured by
    /// the wall-clock benches.
    pub fn simulated_wall_parallel(&self, workers: usize) -> SimDuration {
        let workers = workers.max(1);
        // List-scheduling bound for the capture phase: max single VM vs
        // total/workers, whichever dominates.
        let per_vm: Vec<SimDuration> = self
            .per_vm_times
            .iter()
            .map(|(_, t)| t.searcher + t.parser)
            .collect();
        let longest = per_vm.iter().copied().max().unwrap_or(SimDuration::ZERO);
        let total: SimDuration = per_vm.iter().copied().sum();
        let balanced = SimDuration::from_nanos(total.as_nanos() / workers as u64);
        let capture = longest.max(balanced);
        let checking = SimDuration::from_nanos(self.times.checker.as_nanos() / workers as u64);
        capture + checking
    }
}

impl fmt::Display for ModuleCheckReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "ModChecker: {} on {} vs {} peer(s): {} ({} of {} matches)",
            self.module,
            self.reference,
            self.comparisons,
            if self.clean { "CLEAN" } else { "SUSPECT" },
            self.successes,
            self.comparisons,
        )?;
        for o in &self.outcomes {
            if o.matches() {
                writeln!(f, "  vs {:<8} match", o.vms.1)?;
            } else {
                write!(f, "  vs {:<8} MISMATCH:", o.vms.1)?;
                for p in &o.mismatched {
                    write!(f, " {p};")?;
                }
                writeln!(f)?;
            }
        }
        for (vm, e) in &self.errors {
            writeln!(f, "  vs {vm:<8} ERROR: {e}")?;
        }
        for r in &self.static_findings {
            writeln!(
                f,
                "  static: {} findings on {}",
                r.diagnostics.len(),
                r.vm_name
            )?;
        }
        writeln!(f, "  times: {}", self.times)
    }
}

/// Report from a full-matrix pool check: a verdict for every VM.
#[derive(Clone, Debug)]
pub struct PoolCheckReport {
    /// Module under check.
    pub module: String,
    /// All VM names, scan order.
    pub vm_names: Vec<String>,
    /// Per-VM verdicts.
    pub verdicts: Vec<VmVerdict>,
    /// All pairwise outcomes (`i < j` order over successfully extracted
    /// VMs).
    pub matrix: Vec<PairOutcome>,
    /// VMs that produced a comparable capture (the voting population).
    pub scanned: usize,
    /// Whether the vote covered the whole pool, a degraded majority, or
    /// too few VMs to mean anything.
    pub quorum: QuorumStatus,
    /// Aggregate component times.
    pub times: ComponentTimes,
    /// Per-VM scan-cost breakdowns, in scan order. The sum of the per-VM
    /// capture totals plus the pool-level voting time equals
    /// [`PoolCheckReport::times`]`.total()` — the invariant the span tree
    /// in `mc-obs` is built on.
    pub per_vm: Vec<VmScanStats>,
    /// Aggregate introspection counters across every per-VM session.
    pub vmi: mc_vmi::VmiStats,
    /// Total fault-layer anomalies injected across every per-VM session.
    pub fault_injections: u64,
    /// Non-clean single-VM static analysis reports (populated when
    /// [`crate::pool::CheckConfig::static_prepass`] is on). These break
    /// worm-majority ties: the vote says "discrepancy somewhere", the
    /// static pass names the VMs carrying hook artifacts.
    pub static_findings: Vec<mc_analysis::AnalysisReport>,
}

impl PoolCheckReport {
    /// VMs flagged as suspect — infected or carrying an integrity-signal
    /// error. Unscannable VMs are *not* suspects (no evidence either way).
    pub fn suspects(&self) -> impl Iterator<Item = &VmVerdict> {
        self.verdicts
            .iter()
            .filter(|v| v.status == VerdictStatus::Suspect)
    }

    /// VMs the scan could not reach (lost, paused past the retry budget,
    /// or out of deadline) — candidates for re-scan, not for remediation.
    pub fn unscannable(&self) -> impl Iterator<Item = &VmVerdict> {
        self.verdicts
            .iter()
            .filter(|v| v.status == VerdictStatus::Unscannable)
    }

    /// True when every VM is clean (no discrepancy anywhere).
    pub fn all_clean(&self) -> bool {
        self.verdicts.iter().all(|v| v.clean)
    }

    /// True when *any* discrepancy exists — even if majority voting cannot
    /// name the culprit (the worm scenario of §III: ModChecker still
    /// "detects discrepancies among VMs that can trigger deeper analysis").
    /// Unscannable VMs are availability problems, not discrepancies.
    pub fn any_discrepancy(&self) -> bool {
        self.matrix.iter().any(|o| !o.matches())
            || self
                .verdicts
                .iter()
                .any(|v| v.status == VerdictStatus::Suspect && v.error.is_some())
    }

    /// Machine-readable form of the report (stable key order; used by the
    /// CLI's `--json` and the chaos suite's determinism check).
    pub fn to_json(&self) -> serde_json::Value {
        serde_json::json!({
            "module": self.module,
            "vms": self.vm_names.len(),
            "scanned": self.scanned,
            "quorum": self.quorum.as_str(),
            "all_clean": self.all_clean(),
            "any_discrepancy": self.any_discrepancy(),
            "verdicts": self
                .verdicts
                .iter()
                .map(|v| {
                    serde_json::json!({
                        "vm": v.vm_name,
                        "status": v.status.as_str(),
                        "clean": v.clean,
                        "successes": v.successes,
                        "comparisons": v.comparisons,
                        "suspect_parts": v
                            .suspect_parts
                            .iter()
                            .map(std::string::ToString::to_string)
                            .collect::<Vec<_>>(),
                        "error_kind": v.error.as_ref().map(|e| e.kind.as_str()),
                        "error": v.error.as_ref().map(|e| e.detail.clone()),
                    })
                })
                .collect::<Vec<_>>(),
            "statically_flagged": self
                .statically_flagged_vms()
                .iter()
                .map(|s| (*s).to_string())
                .collect::<Vec<_>>(),
            "times_ms": {
                "searcher": self.times.searcher.as_millis_f64(),
                "parser": self.times.parser.as_millis_f64(),
                "checker": self.times.checker.as_millis_f64(),
                "total": self.times.total().as_millis_f64(),
            },
            // Introspection counters are pure functions of (fault seed, VM):
            // every value below is identical for sequential and parallel
            // scans — the chaos suite's byte-for-byte determinism check
            // covers this section too.
            "vmi": {
                "reads": self.vmi.reads,
                "pages_mapped": self.vmi.pages_mapped,
                "bytes_copied": self.vmi.bytes_copied,
                "page_walks": self.vmi.page_walks,
                "translate_cache_hits": self.vmi.translate_cache_hits,
                "vectored_reads": self.vmi.vectored_reads,
                "retries": self.vmi.retries,
                "transient_faults": self.vmi.transient_faults,
                "torn_detected": self.vmi.torn_detected,
                "stability_rereads": self.vmi.stability_rereads,
                "fault_injections": self.fault_injections,
            },
        })
    }

    /// VM names carrying static-analysis findings (the "deeper analysis"
    /// the paper defers to; requires `static_prepass`). Unlike the vote,
    /// this is per-VM evidence and survives a compromised majority.
    pub fn statically_flagged_vms(&self) -> Vec<&str> {
        let mut out: Vec<&str> = self
            .static_findings
            .iter()
            .map(|r| r.vm_name.as_str())
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }
}

impl fmt::Display for PoolCheckReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "ModChecker pool check: {} across {} VMs",
            self.module,
            self.vm_names.len()
        )?;
        for v in &self.verdicts {
            writeln!(f, "  {v}")?;
        }
        for r in &self.static_findings {
            writeln!(
                f,
                "  static: {} findings on {}",
                r.diagnostics.len(),
                r.vm_name
            )?;
        }
        writeln!(f, "  times: {}", self.times)
    }
}

/// One `(pool, module)` work unit's outcome inside a fleet sweep.
///
/// The unit either produced a full [`PoolCheckReport`] or failed as a
/// whole with a [`CheckError`] — failures are isolated per unit, never
/// aborting the sweep (the scheduler inherits the repaired
/// [`crate::pool::ModChecker::check_all_modules`] semantics).
#[derive(Clone, Debug)]
pub struct FleetUnitReport {
    /// Owning pool's name.
    pub pool: String,
    /// Module checked.
    pub module: String,
    /// Dispatch rank within the pool (0 = first). Priority order is
    /// deterministic: previously-suspect modules first, then by size
    /// descending, then by name.
    pub priority: usize,
    /// True when the unit was boosted because the module was a suspect in
    /// an earlier sweep by the same scheduler.
    pub hot: bool,
    /// The unit's result: a pool report, or the error that sank it.
    pub result: Result<PoolCheckReport, CheckError>,
}

impl FleetUnitReport {
    /// Simulated time the unit consumed (zero for failed units — a failed
    /// unit never produced a timing ledger).
    pub fn duration(&self) -> SimDuration {
        self.result
            .as_ref()
            .map_or(SimDuration::ZERO, |r| r.times.total())
    }
}

/// One pool's slice of a fleet sweep: the list scan that seeded the work
/// units plus every unit's outcome, in priority order.
#[derive(Clone, Debug)]
pub struct FleetPoolReport {
    /// Pool name (image identity).
    pub pool: String,
    /// Member VM names, pool order.
    pub vm_names: Vec<String>,
    /// The cross-VM list scan that produced the consensus module set
    /// (`None` when the scan itself failed, e.g. a one-VM pool).
    pub lists: Option<crate::listdiff::ListDiffReport>,
    /// Why the list scan failed, when it did.
    pub list_error: Option<String>,
    /// Per-unit outcomes, dispatch (priority) order.
    pub units: Vec<FleetUnitReport>,
}

impl FleetPoolReport {
    /// Simulated time this pool consumed: the list walk plus every unit.
    pub fn duration(&self) -> SimDuration {
        let list = self.lists.as_ref().map_or(SimDuration::ZERO, |l| l.elapsed);
        self.units.iter().fold(list, |acc, u| acc + u.duration())
    }
}

/// A whole fleet sweep: every pool's list scan and unit outcomes, plus the
/// VMs that could not be assigned to any pool.
///
/// Everything in here — and in [`FleetReport::to_json`] — is a pure
/// function of (cloud state, fault seed, check config). Shard count and
/// in-flight bounds only reorder execution, so a fixed `--fault-seed`
/// yields byte-identical JSON for sequential, parallel and sharded runs;
/// the golden tests pin exactly that.
#[derive(Clone, Debug)]
pub struct FleetReport {
    /// Per-pool results, fleet pool order.
    pub pools: Vec<FleetPoolReport>,
    /// VMs left out of every pool, as `(vm_name, reason)`.
    pub unassigned: Vec<(String, String)>,
}

impl FleetReport {
    /// Every unit across every pool, canonical order.
    pub fn units(&self) -> impl Iterator<Item = &FleetUnitReport> {
        self.pools.iter().flat_map(|p| p.units.iter())
    }

    /// Total number of work units executed.
    pub fn units_total(&self) -> usize {
        self.pools.iter().map(|p| p.units.len()).sum()
    }

    /// Units that failed as a whole (a [`CheckError`], not a suspect
    /// verdict).
    pub fn units_failed(&self) -> usize {
        self.units().filter(|u| u.result.is_err()).count()
    }

    /// Every suspect as `(pool, module, vm)`, sorted.
    pub fn suspects(&self) -> Vec<(String, String, String)> {
        let mut out: Vec<(String, String, String)> = self
            .units()
            .filter_map(|u| u.result.as_ref().ok().map(|r| (u, r)))
            .flat_map(|(u, r)| {
                r.suspects()
                    .map(move |v| (u.pool.clone(), u.module.clone(), v.vm_name.clone()))
            })
            .collect();
        out.sort();
        out
    }

    /// True when no unit failed and no VM anywhere is a suspect.
    pub fn all_clean(&self) -> bool {
        self.units_failed() == 0
            && self.units().all(|u| {
                u.result
                    .as_ref()
                    .is_ok_and(|r| r.suspects().next().is_none())
            })
    }

    /// Simulated wall-clock of a fully sequential sweep: every list walk
    /// and every unit back to back. The sharded makespan model lives in
    /// [`crate::sched::simulated_fleet_wall`].
    pub fn simulated_wall_sequential(&self) -> SimDuration {
        self.pools
            .iter()
            .fold(SimDuration::ZERO, |acc, p| acc + p.duration())
    }

    /// Machine-readable form (stable key order). Deliberately excludes
    /// anything execution-dependent — no shard count, no cache stats —
    /// so runs differing only in `--shards`/`--max-inflight-per-vm`
    /// serialize byte-identically.
    pub fn to_json(&self) -> serde_json::Value {
        serde_json::json!({
            "pools": self
                .pools
                .iter()
                .map(|p| {
                    serde_json::json!({
                        "pool": p.pool,
                        "vms": p.vm_names,
                        "list_error": p.list_error,
                        "consistent": p.lists.as_ref().map(crate::listdiff::ListDiffReport::consistent),
                        "consensus_modules": p
                            .lists
                            .as_ref()
                            .map(|l| l.consensus_modules.clone())
                            .unwrap_or_default(),
                        "anomalies": p
                            .lists
                            .as_ref()
                            .map(|l| {
                                l.anomalies
                                    .iter()
                                    .map(std::string::ToString::to_string)
                                    .collect::<Vec<_>>()
                            })
                            .unwrap_or_default(),
                        "units": p
                            .units
                            .iter()
                            .map(|u| {
                                serde_json::json!({
                                    "module": u.module,
                                    "priority": u.priority,
                                    "hot": u.hot,
                                    "error": u.result.as_ref().err().map(std::string::ToString::to_string),
                                    "report": u.result.as_ref().ok().map(PoolCheckReport::to_json),
                                })
                            })
                            .collect::<Vec<_>>(),
                    })
                })
                .collect::<Vec<_>>(),
            "unassigned": self
                .unassigned
                .iter()
                .map(|(vm, reason)| serde_json::json!({ "vm": vm, "reason": reason }))
                .collect::<Vec<_>>(),
            "units_total": self.units_total(),
            "units_failed": self.units_failed(),
            "all_clean": self.all_clean(),
            "suspects": self
                .suspects()
                .iter()
                .map(|(p, m, v)| serde_json::json!([p, m, v]))
                .collect::<Vec<_>>(),
            "simulated_wall_sequential_ms": self.simulated_wall_sequential().as_millis_f64(),
        })
    }
}

impl fmt::Display for FleetReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "fleet sweep: {} pool(s), {} unit(s), {} failed, {}",
            self.pools.len(),
            self.units_total(),
            self.units_failed(),
            if self.all_clean() {
                "all clean"
            } else {
                "SUSPECTS"
            }
        )?;
        for p in &self.pools {
            let consensus = p.lists.as_ref().map_or(0, |l| l.consensus_modules.len());
            writeln!(
                f,
                "  pool {}: {} VM(s), {} consensus module(s), {} unit(s)",
                p.pool,
                p.vm_names.len(),
                consensus,
                p.units.len()
            )?;
            if let Some(e) = &p.list_error {
                writeln!(f, "    list scan failed: {e}")?;
            }
        }
        for (pool, module, vm) in self.suspects() {
            writeln!(f, "  SUSPECT {vm} ({pool}/{module})")?;
        }
        for (vm, reason) in &self.unassigned {
            writeln!(f, "  unassigned {vm}: {reason}")?;
        }
        writeln!(
            f,
            "  simulated sequential wall: {}",
            self.simulated_wall_sequential()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(a: &str, b: &str, mismatched: Vec<PartId>) -> PairOutcome {
        PairOutcome {
            vms: (a.into(), b.into()),
            mismatched,
            slots_adjusted: 0,
            residual_diffs: 0,
        }
    }

    #[test]
    fn component_times_accumulate() {
        let mut t = ComponentTimes::default();
        t.accumulate(&ComponentTimes {
            searcher: SimDuration::from_millis(2),
            parser: SimDuration::from_millis(1),
            checker: SimDuration::from_millis(3),
        });
        t.accumulate(&ComponentTimes {
            searcher: SimDuration::from_millis(1),
            parser: SimDuration::ZERO,
            checker: SimDuration::ZERO,
        });
        assert_eq!(t.searcher, SimDuration::from_millis(3));
        assert_eq!(t.total(), SimDuration::from_millis(7));
    }

    #[test]
    fn suspect_parts_deduplicate() {
        let report = ModuleCheckReport {
            module: "hal.dll".into(),
            reference: "dom1".into(),
            outcomes: vec![
                outcome("dom1", "dom2", vec![PartId::SectionData(".text".into())]),
                outcome("dom1", "dom3", vec![PartId::SectionData(".text".into())]),
            ],
            errors: vec![],
            successes: 0,
            comparisons: 2,
            clean: false,
            scanned: 3,
            quorum: QuorumStatus::Full,
            times: ComponentTimes::default(),
            per_vm_times: vec![],
            vmi: mc_vmi::VmiStats::default(),
            fault_injections: 0,
            static_findings: vec![],
        };
        assert_eq!(report.suspect_parts().len(), 1);
    }

    #[test]
    fn parallel_wall_is_bounded_by_sequential() {
        let per_vm = |ms: u64| ComponentTimes {
            searcher: SimDuration::from_millis(ms),
            parser: SimDuration::from_millis(1),
            checker: SimDuration::ZERO,
        };
        let mut times = ComponentTimes::default();
        let names = ["dom1", "dom2", "dom3", "dom4"];
        let per: Vec<(String, ComponentTimes)> =
            names.iter().map(|n| (n.to_string(), per_vm(4))).collect();
        for (_, t) in &per {
            times.accumulate(t);
        }
        times.checker = SimDuration::from_millis(8);
        let report = ModuleCheckReport {
            module: "m".into(),
            reference: "dom1".into(),
            outcomes: vec![],
            errors: vec![],
            successes: 0,
            comparisons: 0,
            clean: true,
            scanned: 4,
            quorum: QuorumStatus::Full,
            times,
            per_vm_times: per,
            vmi: mc_vmi::VmiStats::default(),
            fault_injections: 0,
            static_findings: vec![],
        };
        let seq = report.simulated_wall_sequential();
        let par4 = report.simulated_wall_parallel(4);
        let par1 = report.simulated_wall_parallel(1);
        assert!(par4 < seq, "parallel {par4} vs sequential {seq}");
        // One worker degenerates to (at least) the sequential capture cost.
        assert!(par1 >= par4);
        assert!(par1 <= seq + SimDuration::from_millis(1));
    }

    #[test]
    fn display_renders_verdicts() {
        let v = VmVerdict {
            vm: mc_hypervisor::VmId(3),
            vm_name: "dom3".into(),
            status: VerdictStatus::Suspect,
            successes: 1,
            comparisons: 4,
            clean: false,
            suspect_parts: vec![PartId::DosHeader],
            error: None,
        };
        let s = v.to_string();
        assert!(s.contains("SUSPECT"));
        assert!(s.contains("IMAGE_DOS_HEADER"));
    }

    #[test]
    fn error_kinds_classify_reachability_vs_integrity() {
        use mc_hypervisor::{HvError, VmId};
        use mc_vmi::VmiError;
        let cases = [
            (
                CheckError::ModuleNotFound {
                    vm: "dom1".into(),
                    module: "hal.dll".into(),
                },
                VerdictErrorKind::ModuleNotFound,
                false,
            ),
            (
                CheckError::Vmi(VmiError::Hv(HvError::VmLost(VmId(3)))),
                VerdictErrorKind::VmUnreachable,
                true,
            ),
            (
                CheckError::Vmi(VmiError::RetriesExhausted {
                    va: 0x1000,
                    attempts: 5,
                    last: HvError::TransientFault { va: 0x1000 },
                }),
                VerdictErrorKind::VmUnreachable,
                true,
            ),
            (
                CheckError::Vmi(VmiError::DeadlineExceeded {
                    elapsed: SimDuration::from_millis(10),
                    deadline: SimDuration::from_millis(5),
                }),
                VerdictErrorKind::Deadline,
                true,
            ),
            (
                CheckError::Vmi(VmiError::TornRead { va: 0x2000 }),
                VerdictErrorKind::CaptureFailed,
                false,
            ),
            (
                CheckError::ListCorrupt {
                    vm: "dom2".into(),
                    walked: 9,
                },
                VerdictErrorKind::CaptureFailed,
                false,
            ),
        ];
        for (err, kind, unscannable) in cases {
            let v = VerdictError::classify(&err);
            assert_eq!(v.kind, kind, "{err}");
            assert_eq!(v.kind.is_unscannable(), unscannable, "{err}");
            assert!(!v.detail.is_empty());
        }
    }
}
