//! Observability glue: turns finished check reports into `mc-obs` metric
//! samples and simulated-time trace spans.
//!
//! Everything here is *post-processing*: the scan itself stays free of
//! instrumentation side channels, and the spans/metrics are derived from
//! the deterministic numbers already carried by [`PoolCheckReport`] /
//! [`ModuleCheckReport`]. That is what makes the exported values
//! byte-identical between sequential and parallel runs under the same
//! fault seed — the report is, and this module adds nothing the report
//! does not already pin down.
//!
//! The span tree mirrors the paper's component pipeline: a `check_pool`
//! root covers the whole scan; under it one `capture` span per VM nests
//! `page_map` (Module-Searcher), `parse` (Module-Parser) and `hash`
//! (Integrity-Checker header work); a final `vote` span carries the
//! pool-level pairwise/canonical comparison time. By construction the
//! root's simulated duration equals [`PoolCheckReport::times`]`.total()`
//! and the children sum exactly to the root — no lost or double-charged
//! simulated time.

use mc_hypervisor::SimDuration;
use mc_obs::{MetricsRegistry, TraceSpan};

use crate::report::{ModuleCheckReport, PoolCheckReport, QuorumStatus, VerdictStatus};

/// A pool scan rendered for export: the metrics snapshot plus the span
/// tree. Build one with [`observe_scan`].
#[derive(Clone, Debug)]
pub struct ScanObservation {
    /// Counter/gauge/histogram snapshot derived from the report.
    pub registry: MetricsRegistry,
    /// Simulated-time span tree rooted at `check_pool`.
    pub trace: TraceSpan,
}

/// Derives both the metrics snapshot and the span tree from one pool
/// report.
pub fn observe_scan(report: &PoolCheckReport) -> ScanObservation {
    let mut registry = MetricsRegistry::new();
    record_pool_report(report, &mut registry);
    ScanObservation {
        registry,
        trace: pool_span(report),
    }
}

/// Builds the simulated-time span tree for one pool scan.
///
/// Invariants (tested): the root's `duration_ns` equals
/// `report.times.total().as_nanos()`, and the children (per-VM `capture`
/// spans plus the `vote` span) sum exactly to the root.
pub fn pool_span(report: &PoolCheckReport) -> TraceSpan {
    let mut root = mc_obs::span!("check_pool", module = report.module, quorum = report.quorum)
        .with_duration_ns(report.times.total().as_nanos());
    let mut capture_total = SimDuration::ZERO;
    for vm in &report.per_vm {
        capture_total += vm.times.total();
        let mut capture = mc_obs::span!("capture", vm = vm.vm_name)
            .with_duration_ns(vm.times.total().as_nanos())
            .with_retries(vm.vmi.retries)
            .with_faults(vm.fault_injections);
        capture.push(
            TraceSpan::new("page_map")
                .with_attr("pages", &vm.vmi.pages_mapped)
                .with_duration_ns(vm.times.searcher.as_nanos()),
        );
        capture.push(TraceSpan::new("parse").with_duration_ns(vm.times.parser.as_nanos()));
        capture.push(TraceSpan::new("hash").with_duration_ns(vm.times.checker.as_nanos()));
        root.push(capture);
    }
    // The vote is pool-level work: whatever checker time the per-VM
    // captures did not account for (pairwise diffs / canonical
    // normalization, charged to the shared ledger).
    let vote_ns = report
        .times
        .total()
        .as_nanos()
        .saturating_sub(capture_total.as_nanos());
    root.push(
        TraceSpan::new("vote")
            .with_attr("pairs", &report.matrix.len())
            .with_duration_ns(vote_ns),
    );
    root
}

/// Records one pool scan into a shared registry: cumulative counters
/// (rounds, verdicts, quorum degradations, introspection work, Algorithm 2
/// accounting), last-scan gauges (`scan_*_ms`, pool sizes) and the per-VM
/// capture-time histogram.
#[allow(clippy::cast_precision_loss)]
pub fn record_pool_report(report: &PoolCheckReport, reg: &mut MetricsRegistry) {
    reg.counter_add("scan_rounds_total", 1);
    match report.quorum {
        QuorumStatus::Full => {}
        QuorumStatus::Degraded => reg.counter_add("scan_quorum_degraded_total", 1),
        QuorumStatus::Lost => reg.counter_add("scan_quorum_lost_total", 1),
    }
    for v in &report.verdicts {
        let name = match v.status {
            VerdictStatus::Clean => "scan_verdict_clean_total",
            VerdictStatus::Suspect => "scan_verdict_suspect_total",
            VerdictStatus::Unscannable => "scan_verdict_unscannable_total",
        };
        reg.counter_add(name, 1);
    }
    let (slots, residuals) = report.matrix.iter().fold((0u64, 0u64), |(s, r), o| {
        (s + o.slots_adjusted as u64, r + o.residual_diffs as u64)
    });
    reg.counter_add("checker_slots_adjusted_total", slots);
    reg.counter_add("checker_residual_diffs_total", residuals);
    reg.counter_add("hv_fault_injections_total", report.fault_injections);
    report.vmi.record_into(reg);

    reg.gauge_set("scan_pool_vms", report.vm_names.len() as f64);
    reg.gauge_set("scan_scanned_vms", report.scanned as f64);
    reg.gauge_set("scan_searcher_ms", report.times.searcher.as_millis_f64());
    reg.gauge_set("scan_parser_ms", report.times.parser.as_millis_f64());
    reg.gauge_set("scan_checker_ms", report.times.checker.as_millis_f64());
    reg.gauge_set("scan_total_ms", report.times.total().as_millis_f64());
    for vm in &report.per_vm {
        reg.observe("scan_vm_capture_ms", vm.times.total().as_millis_f64());
    }
}

/// Records one reference-vs-peers check ([`crate::pool::ModChecker::check_one`])
/// into a shared registry. Same metric names as the pool path where the
/// semantics coincide, so Figure 7/8 sweeps and pool monitoring read one
/// taxonomy.
#[allow(clippy::cast_precision_loss)]
pub fn record_module_report(report: &ModuleCheckReport, reg: &mut MetricsRegistry) {
    reg.counter_add("scan_rounds_total", 1);
    match report.quorum {
        QuorumStatus::Full => {}
        QuorumStatus::Degraded => reg.counter_add("scan_quorum_degraded_total", 1),
        QuorumStatus::Lost => reg.counter_add("scan_quorum_lost_total", 1),
    }
    reg.counter_add(
        if report.clean {
            "scan_verdict_clean_total"
        } else {
            "scan_verdict_suspect_total"
        },
        1,
    );
    reg.counter_add("hv_fault_injections_total", report.fault_injections);
    report.vmi.record_into(reg);

    reg.gauge_set("scan_pool_vms", report.per_vm_times.len() as f64);
    reg.gauge_set("scan_scanned_vms", report.scanned as f64);
    reg.gauge_set("scan_searcher_ms", report.times.searcher.as_millis_f64());
    reg.gauge_set("scan_parser_ms", report.times.parser.as_millis_f64());
    reg.gauge_set("scan_checker_ms", report.times.checker.as_millis_f64());
    reg.gauge_set("scan_total_ms", report.times.total().as_millis_f64());
    for (_, t) in &report.per_vm_times {
        reg.observe("scan_vm_capture_ms", t.total().as_millis_f64());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::ModChecker;
    use mc_guest::build_cloud_with_modules;
    use mc_hypervisor::{AddressWidth, Hypervisor, VmId};
    use mc_pe::corpus::ModuleBlueprint;

    fn cloud(n: usize) -> (Hypervisor, Vec<VmId>) {
        let mut hv = Hypervisor::new();
        let bps = vec![ModuleBlueprint::new("hal.dll", AddressWidth::W32, 8 * 1024)];
        let guests = build_cloud_with_modules(&mut hv, n, AddressWidth::W32, &bps).unwrap();
        let ids = guests.iter().map(|g| g.vm).collect();
        (hv, ids)
    }

    #[test]
    fn span_tree_accounts_for_every_simulated_nanosecond() {
        let (hv, ids) = cloud(5);
        let report = ModChecker::new().check_pool(&hv, &ids, "hal.dll").unwrap();
        let obs = observe_scan(&report);
        assert_eq!(obs.trace.duration_ns, report.times.total().as_nanos());
        assert_eq!(
            obs.trace.children_total_ns(),
            obs.trace.duration_ns,
            "capture spans + vote must cover the root exactly"
        );
        assert_eq!(obs.trace.self_time_ns(), 0);
        // One capture per VM, each internally consistent, plus the vote.
        assert_eq!(obs.trace.children.len(), 6);
        for c in obs.trace.children.iter().filter(|c| c.name == "capture") {
            assert_eq!(c.children_total_ns(), c.duration_ns, "{:?}", c.attrs);
        }
    }

    #[test]
    fn registry_snapshot_reflects_the_verdicts() {
        let (hv, ids) = cloud(4);
        let report = ModChecker::new().check_pool(&hv, &ids, "hal.dll").unwrap();
        let obs = observe_scan(&report);
        let reg = &obs.registry;
        assert_eq!(reg.counter("scan_rounds_total"), 1);
        assert_eq!(reg.counter("scan_verdict_clean_total"), 4);
        assert_eq!(reg.counter("scan_verdict_suspect_total"), 0);
        assert_eq!(reg.counter("vmi_reads_total"), report.vmi.reads);
        assert_eq!(reg.gauge("scan_pool_vms"), Some(4.0));
        assert_eq!(
            reg.gauge("scan_total_ms"),
            Some(report.times.total().as_millis_f64())
        );
        let h = reg.histogram("scan_vm_capture_ms").unwrap();
        assert_eq!(h.count(), 4);
    }

    #[test]
    fn module_report_records_under_the_same_taxonomy() {
        let (hv, ids) = cloud(4);
        let report = ModChecker::new()
            .check_one(&hv, ids[0], &ids[1..], "hal.dll")
            .unwrap();
        let mut reg = MetricsRegistry::new();
        record_module_report(&report, &mut reg);
        assert_eq!(reg.counter("scan_verdict_clean_total"), 1);
        assert_eq!(reg.counter("vmi_reads_total"), report.vmi.reads);
        assert!(reg.gauge("scan_total_ms").unwrap() > 0.0);
    }
}
