//! Observability glue: turns finished check reports into `mc-obs` metric
//! samples and simulated-time trace spans.
//!
//! Everything here is *post-processing*: the scan itself stays free of
//! instrumentation side channels, and the spans/metrics are derived from
//! the deterministic numbers already carried by [`PoolCheckReport`] /
//! [`ModuleCheckReport`]. That is what makes the exported values
//! byte-identical between sequential and parallel runs under the same
//! fault seed — the report is, and this module adds nothing the report
//! does not already pin down.
//!
//! The span tree mirrors the paper's component pipeline: a `check_pool`
//! root covers the whole scan; under it one `capture` span per VM nests
//! `page_map` (Module-Searcher), `parse` (Module-Parser) and `hash`
//! (Integrity-Checker header work); a final `vote` span carries the
//! pool-level pairwise/canonical comparison time. By construction the
//! root's simulated duration equals [`PoolCheckReport::times`]`.total()`
//! and the children sum exactly to the root — no lost or double-charged
//! simulated time.

use mc_hypervisor::SimDuration;
use mc_obs::{MetricsRegistry, TraceSpan};

use crate::report::{FleetReport, ModuleCheckReport, PoolCheckReport, QuorumStatus, VerdictStatus};
use crate::serve::{Confidence, Disposition, Rejected, ServeReport};

/// A pool scan rendered for export: the metrics snapshot plus the span
/// tree. Build one with [`observe_scan`].
#[derive(Clone, Debug)]
pub struct ScanObservation {
    /// Counter/gauge/histogram snapshot derived from the report.
    pub registry: MetricsRegistry,
    /// Simulated-time span tree rooted at `check_pool`.
    pub trace: TraceSpan,
}

/// Derives both the metrics snapshot and the span tree from one pool
/// report.
pub fn observe_scan(report: &PoolCheckReport) -> ScanObservation {
    let mut registry = MetricsRegistry::new();
    record_pool_report(report, &mut registry);
    ScanObservation {
        registry,
        trace: pool_span(report),
    }
}

/// Builds the simulated-time span tree for one pool scan.
///
/// Invariants (tested): the root's `duration_ns` equals
/// `report.times.total().as_nanos()`, and the children (per-VM `capture`
/// spans plus the `vote` span) sum exactly to the root.
pub fn pool_span(report: &PoolCheckReport) -> TraceSpan {
    let mut root = mc_obs::span!("check_pool", module = report.module, quorum = report.quorum)
        .with_duration_ns(report.times.total().as_nanos());
    let mut capture_total = SimDuration::ZERO;
    for vm in &report.per_vm {
        capture_total += vm.times.total();
        let mut capture = mc_obs::span!("capture", vm = vm.vm_name)
            .with_duration_ns(vm.times.total().as_nanos())
            .with_retries(vm.vmi.retries)
            .with_faults(vm.fault_injections);
        capture.push(
            TraceSpan::new("page_map")
                .with_attr("pages", &vm.vmi.pages_mapped)
                .with_duration_ns(vm.times.searcher.as_nanos()),
        );
        capture.push(TraceSpan::new("parse").with_duration_ns(vm.times.parser.as_nanos()));
        capture.push(TraceSpan::new("hash").with_duration_ns(vm.times.checker.as_nanos()));
        root.push(capture);
    }
    // The vote is pool-level work: whatever checker time the per-VM
    // captures did not account for (pairwise diffs / canonical
    // normalization, charged to the shared ledger).
    let vote_ns = report
        .times
        .total()
        .as_nanos()
        .saturating_sub(capture_total.as_nanos());
    root.push(
        TraceSpan::new("vote")
            .with_attr("pairs", &report.matrix.len())
            .with_duration_ns(vote_ns),
    );
    // The static pre-pass charges no simulated time (it reuses captured
    // bytes; determinism demands the times stay execution-independent), so
    // its span is zero-duration evidence — emitted only when it found
    // something, keeping clean-scan trees identical to pre-pass-off runs.
    if !report.static_findings.is_empty() {
        root.push(
            TraceSpan::new("static_analysis")
                .with_attr("flagged_vms", &report.statically_flagged_vms().len())
                .with_duration_ns(0),
        );
    }
    root
}

/// Records one pool scan into a shared registry: cumulative counters
/// (rounds, verdicts, quorum degradations, introspection work, Algorithm 2
/// accounting), last-scan gauges (`scan_*_ms`, pool sizes) and the per-VM
/// capture-time histogram.
#[allow(clippy::cast_precision_loss)]
pub fn record_pool_report(report: &PoolCheckReport, reg: &mut MetricsRegistry) {
    reg.counter_add("scan_rounds_total", 1);
    match report.quorum {
        QuorumStatus::Full => {}
        QuorumStatus::Degraded => reg.counter_add("scan_quorum_degraded_total", 1),
        QuorumStatus::Lost => reg.counter_add("scan_quorum_lost_total", 1),
    }
    for v in &report.verdicts {
        let name = match v.status {
            VerdictStatus::Clean => "scan_verdict_clean_total",
            VerdictStatus::Suspect => "scan_verdict_suspect_total",
            VerdictStatus::Unscannable => "scan_verdict_unscannable_total",
        };
        reg.counter_add(name, 1);
    }
    let (slots, residuals) = report.matrix.iter().fold((0u64, 0u64), |(s, r), o| {
        (s + o.slots_adjusted as u64, r + o.residual_diffs as u64)
    });
    reg.counter_add("checker_slots_adjusted_total", slots);
    reg.counter_add("checker_residual_diffs_total", residuals);
    reg.counter_add("hv_fault_injections_total", report.fault_injections);
    reg.counter_add(
        "analysis_flagged_vms_total",
        report.static_findings.len() as u64,
    );
    reg.counter_add(
        "analysis_findings_total",
        report
            .static_findings
            .iter()
            .map(|r| r.diagnostics.len() as u64)
            .sum(),
    );
    report.vmi.record_into(reg);

    reg.gauge_set("scan_pool_vms", report.vm_names.len() as f64);
    reg.gauge_set("scan_scanned_vms", report.scanned as f64);
    reg.gauge_set("scan_searcher_ms", report.times.searcher.as_millis_f64());
    reg.gauge_set("scan_parser_ms", report.times.parser.as_millis_f64());
    reg.gauge_set("scan_checker_ms", report.times.checker.as_millis_f64());
    reg.gauge_set("scan_total_ms", report.times.total().as_millis_f64());
    for vm in &report.per_vm {
        reg.observe("scan_vm_capture_ms", vm.times.total().as_millis_f64());
    }
}

/// Derives the metrics snapshot and the `fleet → pool → unit` span tree
/// from one fleet sweep. Per-unit pool metrics are folded into the same
/// registry (canonical order, so the export is execution-order
/// independent just like the report itself).
pub fn observe_fleet(report: &FleetReport) -> ScanObservation {
    let mut registry = MetricsRegistry::new();
    record_fleet_report(report, &mut registry);
    for unit in report.units() {
        if let Ok(r) = &unit.result {
            record_pool_report(r, &mut registry);
        }
    }
    ScanObservation {
        registry,
        trace: fleet_span(report),
    }
}

/// Records one fleet sweep into a shared registry under the `fleet_*`
/// taxonomy: cumulative counters (sweeps, units by outcome, pools,
/// unassigned VMs), last-sweep gauges and the per-unit duration histogram.
#[allow(clippy::cast_precision_loss)]
pub fn record_fleet_report(report: &FleetReport, reg: &mut MetricsRegistry) {
    reg.counter_add("fleet_sweeps_total", 1);
    reg.counter_add("fleet_pools_total", report.pools.len() as u64);
    reg.counter_add("fleet_units_total", report.units_total() as u64);
    reg.counter_add("fleet_units_failed_total", report.units_failed() as u64);
    let (clean, suspect) = report
        .units()
        .fold((0u64, 0u64), |(c, s), u| match &u.result {
            Ok(r) if r.suspects().next().is_none() => (c + 1, s),
            Ok(_) => (c, s + 1),
            Err(_) => (c, s),
        });
    reg.counter_add("fleet_units_clean_total", clean);
    reg.counter_add("fleet_units_suspect_total", suspect);
    reg.counter_add("fleet_unassigned_vms_total", report.unassigned.len() as u64);

    reg.gauge_set("fleet_pools", report.pools.len() as f64);
    reg.gauge_set("fleet_units", report.units_total() as f64);
    reg.gauge_set(
        "fleet_vms",
        report.pools.iter().map(|p| p.vm_names.len()).sum::<usize>() as f64,
    );
    reg.gauge_set(
        "fleet_wall_ms",
        report.simulated_wall_sequential().as_millis_f64(),
    );
    for unit in report.units() {
        reg.observe("fleet_unit_ms", unit.duration().as_millis_f64());
    }
}

/// Builds the `fleet → pool → unit` span tree for one sweep.
///
/// Invariants (tested): the root's duration equals
/// [`FleetReport::simulated_wall_sequential`], each `pool` span equals its
/// `listdiff` child plus its `unit` children exactly, and the pool spans
/// sum exactly to the root — the same no-lost-nanoseconds discipline as
/// [`pool_span`], one layer up.
pub fn fleet_span(report: &FleetReport) -> TraceSpan {
    let mut root = mc_obs::span!(
        "fleet",
        pools = report.pools.len(),
        units = report.units_total()
    )
    .with_duration_ns(report.simulated_wall_sequential().as_nanos());
    for pool in &report.pools {
        let mut pspan =
            mc_obs::span!("pool", name = pool.pool).with_duration_ns(pool.duration().as_nanos());
        let list_elapsed = pool.lists.as_ref().map_or(SimDuration::ZERO, |l| l.elapsed);
        pspan.push(
            TraceSpan::new("listdiff")
                .with_attr("vms", &pool.vm_names.len())
                .with_duration_ns(list_elapsed.as_nanos()),
        );
        for unit in &pool.units {
            pspan.push(
                mc_obs::span!("unit", module = unit.module, priority = unit.priority)
                    .with_duration_ns(unit.duration().as_nanos()),
            );
        }
        root.push(pspan);
    }
    root
}

/// Records one reference-vs-peers check ([`crate::pool::ModChecker::check_one`])
/// into a shared registry. Same metric names as the pool path where the
/// semantics coincide, so Figure 7/8 sweeps and pool monitoring read one
/// taxonomy.
#[allow(clippy::cast_precision_loss)]
pub fn record_module_report(report: &ModuleCheckReport, reg: &mut MetricsRegistry) {
    reg.counter_add("scan_rounds_total", 1);
    match report.quorum {
        QuorumStatus::Full => {}
        QuorumStatus::Degraded => reg.counter_add("scan_quorum_degraded_total", 1),
        QuorumStatus::Lost => reg.counter_add("scan_quorum_lost_total", 1),
    }
    reg.counter_add(
        if report.clean {
            "scan_verdict_clean_total"
        } else {
            "scan_verdict_suspect_total"
        },
        1,
    );
    reg.counter_add("hv_fault_injections_total", report.fault_injections);
    report.vmi.record_into(reg);

    reg.gauge_set("scan_pool_vms", report.per_vm_times.len() as f64);
    reg.gauge_set("scan_scanned_vms", report.scanned as f64);
    reg.gauge_set("scan_searcher_ms", report.times.searcher.as_millis_f64());
    reg.gauge_set("scan_parser_ms", report.times.parser.as_millis_f64());
    reg.gauge_set("scan_checker_ms", report.times.checker.as_millis_f64());
    reg.gauge_set("scan_total_ms", report.times.total().as_millis_f64());
    for (_, t) in &report.per_vm_times {
        reg.observe("scan_vm_capture_ms", t.total().as_millis_f64());
    }
}

/// Derives the metrics snapshot and the serve span tree from one daemon
/// run.
pub fn observe_serve(report: &ServeReport) -> ScanObservation {
    let mut registry = MetricsRegistry::new();
    record_serve_report(report, &mut registry);
    ScanObservation {
        registry,
        trace: serve_span(report),
    }
}

/// Records one daemon run into a shared registry under the `serve_*`
/// taxonomy: every query lands in exactly one counter (answered by
/// confidence tier, or rejected by typed reason — the no-silent-drop
/// invariant rendered as arithmetic), plus last-run gauges and the
/// answer-latency / staleness histograms.
#[allow(clippy::cast_precision_loss)]
pub fn record_serve_report(report: &ServeReport, reg: &mut MetricsRegistry) {
    reg.counter_add("serve_queries_total", report.queries.len() as u64);
    for (tier, name) in [
        (Confidence::Fresh, "serve_answered_fresh_total"),
        (Confidence::Stale, "serve_answered_stale_total"),
        (Confidence::Unscannable, "serve_answered_unscannable_total"),
    ] {
        reg.counter_add(name, report.answered_at(tier) as u64);
    }
    for (why, name) in [
        (Rejected::QuotaExceeded, "serve_rejected_quota_total"),
        (Rejected::QueueFull, "serve_rejected_queue_full_total"),
        (Rejected::DeadlineExpired, "serve_rejected_expired_total"),
        (Rejected::UnknownTarget, "serve_rejected_unknown_total"),
    ] {
        reg.counter_add(name, report.rejected_for(why) as u64);
    }
    reg.counter_add("serve_rescans_total", report.rescans as u64);
    reg.counter_add("serve_rescan_failures_total", report.rescan_failures as u64);
    reg.counter_add("serve_sweeps_total", report.sweeps_committed as u64);
    reg.counter_add(
        "serve_quarantined_vms_total",
        report.quarantined_vms.len() as u64,
    );

    let ms = |d: Option<SimDuration>| d.map_or(0.0, SimDuration::as_millis_f64);
    reg.gauge_set("serve_p50_latency_ms", ms(report.latency_percentile(50.0)));
    reg.gauge_set("serve_p99_latency_ms", ms(report.latency_percentile(99.0)));
    reg.gauge_set(
        "serve_p99_staleness_ms",
        ms(report.staleness_percentile(99.0)),
    );
    reg.gauge_set("serve_max_queue_depth", report.max_queue_depth as f64);
    reg.gauge_set("serve_qps", report.answered_per_sec());
    for q in &report.queries {
        if let Disposition::Answered {
            staleness, verdict, ..
        } = &q.disposition
        {
            reg.observe("serve_answer_latency_ms", q.latency.as_millis_f64());
            if verdict.is_some() {
                reg.observe("serve_staleness_ms", staleness.as_millis_f64());
            }
        }
    }
}

/// Builds the two-plane span tree for one daemon run.
///
/// Invariants (tested): the root's duration is the run's total busy time
/// and the `refresh` + `service` children sum to it exactly — the same
/// no-lost-nanoseconds discipline as [`pool_span`], applied to the event
/// loop's two planes instead of a scan pipeline. The idle gap up to the
/// run horizon is an attribute, not span time: idleness is not work.
pub fn serve_span(report: &ServeReport) -> TraceSpan {
    let busy = report.service_busy + report.refresh_busy;
    let mut root = mc_obs::span!(
        "serve",
        queries = report.queries.len(),
        horizon_ms = report.horizon.as_millis_f64()
    )
    .with_duration_ns(busy.as_nanos());
    root.push(
        TraceSpan::new("refresh")
            .with_attr("sweeps", &report.sweeps_committed)
            .with_duration_ns(report.refresh_busy.as_nanos()),
    );
    root.push(
        TraceSpan::new("service")
            .with_attr("answered", &report.answered())
            .with_attr("rescans", &report.rescans)
            .with_duration_ns(report.service_busy.as_nanos()),
    );
    root
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::ModChecker;
    use mc_guest::build_cloud_with_modules;
    use mc_hypervisor::{AddressWidth, Hypervisor, VmId};
    use mc_pe::corpus::ModuleBlueprint;

    fn cloud(n: usize) -> (Hypervisor, Vec<VmId>) {
        let mut hv = Hypervisor::new();
        let bps = vec![ModuleBlueprint::new("hal.dll", AddressWidth::W32, 8 * 1024)];
        let guests = build_cloud_with_modules(&mut hv, n, AddressWidth::W32, &bps).unwrap();
        let ids = guests.iter().map(|g| g.vm).collect();
        (hv, ids)
    }

    #[test]
    fn span_tree_accounts_for_every_simulated_nanosecond() {
        let (hv, ids) = cloud(5);
        let report = ModChecker::new().check_pool(&hv, &ids, "hal.dll").unwrap();
        let obs = observe_scan(&report);
        assert_eq!(obs.trace.duration_ns, report.times.total().as_nanos());
        assert_eq!(
            obs.trace.children_total_ns(),
            obs.trace.duration_ns,
            "capture spans + vote must cover the root exactly"
        );
        assert_eq!(obs.trace.self_time_ns(), 0);
        // One capture per VM, each internally consistent, plus the vote.
        assert_eq!(obs.trace.children.len(), 6);
        for c in obs.trace.children.iter().filter(|c| c.name == "capture") {
            assert_eq!(c.children_total_ns(), c.duration_ns, "{:?}", c.attrs);
        }
    }

    #[test]
    fn registry_snapshot_reflects_the_verdicts() {
        let (hv, ids) = cloud(4);
        let report = ModChecker::new().check_pool(&hv, &ids, "hal.dll").unwrap();
        let obs = observe_scan(&report);
        let reg = &obs.registry;
        assert_eq!(reg.counter("scan_rounds_total"), 1);
        assert_eq!(reg.counter("scan_verdict_clean_total"), 4);
        assert_eq!(reg.counter("scan_verdict_suspect_total"), 0);
        assert_eq!(reg.counter("vmi_reads_total"), report.vmi.reads);
        assert_eq!(reg.gauge("scan_pool_vms"), Some(4.0));
        assert_eq!(
            reg.gauge("scan_total_ms"),
            Some(report.times.total().as_millis_f64())
        );
        let h = reg.histogram("scan_vm_capture_ms").unwrap();
        assert_eq!(h.count(), 4);
    }

    #[test]
    fn static_findings_surface_as_a_zero_cost_span_and_counters() {
        let mut hv = Hypervisor::new();
        let bps = vec![ModuleBlueprint::new("hal.dll", AddressWidth::W32, 8 * 1024)];
        let guests = build_cloud_with_modules(&mut hv, 4, AddressWidth::W32, &bps).unwrap();
        let ids: Vec<VmId> = guests.iter().map(|g| g.vm).collect();
        guests[1]
            .patch_module(&mut hv, "hal.dll", 0x1000, &[0xE9, 0x10, 0x00, 0x00, 0x00])
            .unwrap();
        let report = ModChecker::with_config(crate::pool::CheckConfig {
            static_prepass: true,
            ..crate::pool::CheckConfig::default()
        })
        .check_pool(&hv, &ids, "hal.dll")
        .unwrap();
        assert!(!report.static_findings.is_empty());
        let obs = observe_scan(&report);
        // The pre-pass span is evidence, not time: the nanosecond audit
        // still balances exactly.
        assert_eq!(obs.trace.children_total_ns(), obs.trace.duration_ns);
        let span = obs
            .trace
            .children
            .iter()
            .find(|c| c.name == "static_analysis")
            .expect("findings must surface in the trace");
        assert_eq!(span.duration_ns, 0);
        assert_eq!(
            obs.registry.counter("analysis_flagged_vms_total"),
            report.static_findings.len() as u64
        );
        assert!(obs.registry.counter("analysis_findings_total") > 0);
    }

    #[test]
    fn fleet_span_tree_sums_exactly_at_every_level() {
        use crate::sched::{Fleet, FleetConfig, FleetScheduler, PoolSpec};
        let mut hv = Hypervisor::new();
        let mut pools = Vec::new();
        for p in 0..2 {
            let bps = [
                ModuleBlueprint::new(&format!("fp{p}a.sys"), AddressWidth::W32, 8 * 1024),
                ModuleBlueprint::new(&format!("fp{p}b.sys"), AddressWidth::W32, 4 * 1024),
            ];
            let mut vms = Vec::new();
            for i in 0..3 {
                let vm = hv
                    .create_vm(&format!("f{p}dom{i}"), AddressWidth::W32)
                    .unwrap();
                let files: Vec<(String, mc_pe::PeFile)> = bps
                    .iter()
                    .map(|b| (b.name.clone(), b.build().unwrap()))
                    .collect();
                mc_guest::GuestOs::install_with_modules(
                    &mut hv,
                    vm,
                    &files,
                    (p * 10 + i + 1) as u64,
                )
                .unwrap();
                vms.push(vm);
            }
            pools.push(PoolSpec {
                name: format!("pool{p}"),
                vms,
            });
        }
        let fleet = Fleet::from_pools(pools);
        let sched = FleetScheduler::new(FleetConfig::default());
        let report = sched.sweep(&hv, &fleet);
        let obs = observe_fleet(&report);

        let root = &obs.trace;
        assert_eq!(root.name, "fleet");
        assert_eq!(
            root.duration_ns,
            report.simulated_wall_sequential().as_nanos()
        );
        assert_eq!(root.children_total_ns(), root.duration_ns);
        assert_eq!(root.self_time_ns(), 0, "no unattributed fleet time");
        assert_eq!(root.children.len(), 2);
        for (pspan, pool) in root.children.iter().zip(&report.pools) {
            assert_eq!(pspan.name, "pool");
            assert_eq!(pspan.duration_ns, pool.duration().as_nanos());
            assert_eq!(pspan.children_total_ns(), pspan.duration_ns);
            // listdiff + one span per unit.
            assert_eq!(pspan.children.len(), 1 + pool.units.len());
            assert_eq!(pspan.children[0].name, "listdiff");
        }

        let reg = &obs.registry;
        assert_eq!(reg.counter("fleet_sweeps_total"), 1);
        assert_eq!(reg.counter("fleet_units_total"), 4);
        assert_eq!(reg.counter("fleet_units_clean_total"), 4);
        assert_eq!(reg.counter("fleet_units_failed_total"), 0);
        assert_eq!(reg.gauge("fleet_pools"), Some(2.0));
        assert_eq!(reg.gauge("fleet_vms"), Some(6.0));
        assert_eq!(
            reg.gauge("fleet_wall_ms"),
            Some(report.simulated_wall_sequential().as_millis_f64())
        );
        assert_eq!(reg.histogram("fleet_unit_ms").unwrap().count(), 4);
        // The per-unit pool reports fold into the same registry.
        assert_eq!(reg.counter("scan_rounds_total"), 4);
    }

    #[test]
    fn serve_observation_accounts_for_every_query_and_nanosecond() {
        use crate::sched::{Fleet, PoolSpec};
        use crate::serve::{AttestQuery, AttestServer, ServeConfig};

        let mut hv = Hypervisor::new();
        let bps = vec![ModuleBlueprint::new("hal.dll", AddressWidth::W32, 8 * 1024)];
        let guests = build_cloud_with_modules(&mut hv, 3, AddressWidth::W32, &bps).unwrap();
        let fleet = Fleet::from_pools(vec![PoolSpec {
            name: "pool0".to_string(),
            vms: guests.iter().map(|g| g.vm).collect(),
        }]);
        let queries: Vec<AttestQuery> = (0..6)
            .map(|i| AttestQuery {
                at: SimDuration::from_millis(30 + 5 * i),
                tenant: format!("tenant{}", i % 2),
                pool: if i == 5 { "nopool" } else { "pool0" }.to_string(),
                module: "hal.dll".to_string(),
                deadline: SimDuration::from_millis(200),
            })
            .collect();
        let report = AttestServer::new(ServeConfig::default()).run(&hv, &fleet, &queries);
        assert!(report.answered() > 0 && report.rejected() > 0);

        let obs = observe_serve(&report);
        let reg = &obs.registry;
        // Conservation: answered tiers + typed rejections == queries.
        let answered = reg.counter("serve_answered_fresh_total")
            + reg.counter("serve_answered_stale_total")
            + reg.counter("serve_answered_unscannable_total");
        let rejected = reg.counter("serve_rejected_quota_total")
            + reg.counter("serve_rejected_queue_full_total")
            + reg.counter("serve_rejected_expired_total")
            + reg.counter("serve_rejected_unknown_total");
        assert_eq!(answered + rejected, reg.counter("serve_queries_total"));
        assert_eq!(answered, report.answered() as u64);
        assert_eq!(
            reg.histogram("serve_answer_latency_ms").unwrap().count(),
            report.answered() as u64
        );
        assert!(reg.gauge("serve_qps").unwrap() > 0.0);

        let root = &obs.trace;
        assert_eq!(root.name, "serve");
        assert_eq!(
            root.duration_ns,
            (report.service_busy + report.refresh_busy).as_nanos()
        );
        assert_eq!(root.children_total_ns(), root.duration_ns);
        assert_eq!(root.self_time_ns(), 0, "refresh + service cover the run");
        assert_eq!(root.children.len(), 2);
    }

    #[test]
    fn module_report_records_under_the_same_taxonomy() {
        let (hv, ids) = cloud(4);
        let report = ModChecker::new()
            .check_one(&hv, ids[0], &ids[1..], "hal.dll")
            .unwrap();
        let mut reg = MetricsRegistry::new();
        record_module_report(&report, &mut reg);
        assert_eq!(reg.counter("scan_verdict_clean_total"), 1);
        assert_eq!(reg.counter("vmi_reads_total"), report.vmi.reads);
        assert!(reg.gauge("scan_total_ms").unwrap() > 0.0);
    }
}
