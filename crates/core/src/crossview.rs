//! Cross-view detection: reconcile what guests *claim* is loaded against
//! what is *physically* resident, voting across the pool.
//!
//! The paper's per-module vote and the EXT-2 list diff both trust the
//! guest's `PsLoadedModuleList` as the index of what to scan. An active
//! adversary can attack that index itself:
//!
//! * **DKOM unlinking on every VM** — today's list diff votes listings
//!   against each other, so a module unlinked from *all* its VMs simply
//!   vanishes from the consensus and nothing is scanned. But the unlink
//!   leaves physical residue on every VM: the orphaned
//!   `LDR_DATA_TABLE_ENTRY` in the pool and the still-mapped image.
//! * **Checker blinding** — the list stays intact but a victim entry's
//!   `DllBase` is redirected at a decoy copy of the clean image, so every
//!   capture (and every vote) reads staged bytes. The truly mapped image
//!   is then claimed by *no* entry.
//!
//! [`CrossView::scan`] runs, per VM, the L5 structural survey
//! ([`mc_analysis::survey_module_list`]) plus a physical PE-header sweep
//! ([`mc_vmi::VmiSession::sweep_image_headers`]) over the module region
//! the listed entries span, and classifies per-VM evidence:
//!
//! * an orphaned entry → a *hidden module* candidate (named from the
//!   orphan's recovered `BaseDllName`);
//! * a swept image whose base no linked entry claims → an *unlisted
//!   image* candidate (attributed to a listed module when exactly one
//!   advertises the same `SizeOfImage` — the blinding signature: the
//!   entry claims the decoy, the real image matches the entry's size).
//!
//! Candidates then vote across the pool exactly like the module vote: a
//! finding reported by a strict majority of readable VMs is a pool-level
//! discrepancy; below-majority residue (e.g. the single-VM DKOM the list
//! diff already names) stays a per-VM matter. Clean pools produce zero
//! findings — every header the sweep sees is claimed by the list.

use std::collections::{BTreeMap, BTreeSet};

use mc_hypervisor::{Hypervisor, SimDuration, VmId, PAGE_SIZE};
use mc_vmi::{RetryPolicy, VmiSession};

use crate::error::CheckError;

/// Cross-view scan configuration.
#[derive(Clone, Copy, Debug)]
pub struct CrossViewConfig {
    /// Pages swept beyond the span of the listed (and orphan-claimed)
    /// bases. The per-VM allocation skew shifts *every* module of a VM
    /// equally, so the margin only has to absorb inter-allocation guard
    /// gaps (≤ 65 pages each): the default of 512 pages brackets an image
    /// hidden several allocations past either end of the claimed span.
    pub margin_pages: u64,
    /// Capture fast path for the survey and sweep sessions.
    pub fast_capture: bool,
    /// Retry policy for transient introspection faults.
    pub retry: RetryPolicy,
}

impl Default for CrossViewConfig {
    fn default() -> Self {
        CrossViewConfig {
            margin_pages: 512,
            fast_capture: true,
            retry: RetryPolicy::default(),
        }
    }
}

/// What kind of cross-view discrepancy a finding describes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum CrossViewKind {
    /// An orphaned `LDR_DATA_TABLE_ENTRY` (DKOM unlink residue) named the
    /// same module on a majority of VMs.
    HiddenModule,
    /// A physically resident PE image claimed by no list entry on a
    /// majority of VMs — the checker-blinding / unlisted-implant signature.
    UnlistedImage,
}

impl std::fmt::Display for CrossViewKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            CrossViewKind::HiddenModule => "hidden-module",
            CrossViewKind::UnlistedImage => "unlisted-image",
        })
    }
}

/// One pool-level cross-view finding (majority-voted).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CrossViewFinding {
    /// Discrepancy kind.
    pub kind: CrossViewKind,
    /// Module name the evidence attributes the finding to, when
    /// recoverable (orphan `BaseDllName`, or the unique listed module
    /// whose `SizeOfImage` matches an unlisted image). Lowercased.
    pub module: Option<String>,
    /// Advertised `SizeOfImage` of the evidence, when the sweep saw one.
    pub size: Option<u64>,
    /// VM names reporting the evidence, sorted.
    pub vms: Vec<String>,
    /// Number of readable VMs reporting it (`vms.len()`).
    pub votes: usize,
    /// Total readable VMs voting.
    pub total: usize,
}

impl std::fmt::Display for CrossViewFinding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: {} ({} of {} VMs: {:?})",
            self.kind,
            match (&self.module, self.size) {
                (Some(m), _) => m.clone(),
                (None, Some(s)) => format!("unattributed image of {s} bytes"),
                (None, None) => "unattributed".to_string(),
            },
            self.votes,
            self.total,
            self.vms
        )
    }
}

/// Result of a pool cross-view scan.
#[derive(Clone, Debug, Default)]
pub struct CrossViewReport {
    /// Readable VMs that contributed a survey and sweep.
    pub vms_scanned: usize,
    /// VM names whose survey could not run (attach or list-head failure).
    pub unreadable: Vec<String>,
    /// Majority-voted findings, sorted by (kind, module, size).
    pub findings: Vec<CrossViewFinding>,
    /// Total simulated introspection time across surveys and sweeps.
    pub elapsed: SimDuration,
}

impl CrossViewReport {
    /// True when the guest view and the physical view agree on every VM.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// The hidden-module findings (DKOM residue).
    pub fn hidden_modules(&self) -> impl Iterator<Item = &CrossViewFinding> {
        self.findings
            .iter()
            .filter(|f| f.kind == CrossViewKind::HiddenModule)
    }

    /// The unlisted-image findings (blinding / implant residue).
    pub fn unlisted_images(&self) -> impl Iterator<Item = &CrossViewFinding> {
        self.findings
            .iter()
            .filter(|f| f.kind == CrossViewKind::UnlistedImage)
    }

    /// Records the scan into a metrics registry (`crossview_*` series).
    #[allow(clippy::cast_precision_loss)]
    pub fn record_metrics(&self, reg: &mut mc_obs::MetricsRegistry) {
        reg.counter_add("crossview_scans_total", 1);
        reg.counter_add(
            "crossview_hidden_modules_total",
            self.hidden_modules().count() as u64,
        );
        reg.counter_add(
            "crossview_unlisted_images_total",
            self.unlisted_images().count() as u64,
        );
        reg.gauge_set("crossview_vms_scanned", self.vms_scanned as f64);
        reg.gauge_set("crossview_findings", self.findings.len() as f64);
    }
}

impl std::fmt::Display for CrossViewReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "cross-view over {} VM(s): {}",
            self.vms_scanned,
            if self.is_clean() {
                "consistent"
            } else {
                "ANOMALOUS"
            }
        )?;
        for vm in &self.unreadable {
            writeln!(f, "  {vm}: unreadable")?;
        }
        for finding in &self.findings {
            writeln!(f, "  {finding}")?;
        }
        Ok(())
    }
}

/// Per-VM evidence, keyed for the pool vote.
#[derive(Debug, Default)]
struct VmEvidence {
    /// Orphan names (lowercased) with the size their entry advertises.
    hidden: BTreeMap<String, Option<u64>>,
    /// Unlisted image evidence: attributed name (if unique size match)
    /// and advertised size.
    unlisted: BTreeSet<(Option<String>, u64)>,
}

/// The cross-view scanner.
#[derive(Clone, Copy, Debug, Default)]
pub struct CrossView {
    /// Configuration.
    pub config: CrossViewConfig,
}

impl CrossView {
    /// A scanner with default configuration.
    pub fn new() -> Self {
        CrossView::default()
    }

    /// Surveys and sweeps every VM, then votes the evidence across the
    /// pool.
    ///
    /// # Errors
    ///
    /// [`CheckError::PoolTooSmall`] below two VMs; per-VM introspection
    /// failures degrade into `unreadable` entries, never errors.
    pub fn scan(&self, hv: &Hypervisor, vms: &[VmId]) -> Result<CrossViewReport, CheckError> {
        if vms.len() < 2 {
            return Err(CheckError::PoolTooSmall(vms.len()));
        }
        let mut elapsed = SimDuration::ZERO;
        let mut unreadable = Vec::new();
        let mut evidence: Vec<(String, VmEvidence)> = Vec::new();

        for &vm in vms {
            let vm_name = hv.vm(vm).map(|v| v.name.clone()).unwrap_or_default();
            let Ok(mut session) = VmiSession::attach(hv, vm) else {
                unreadable.push(vm_name);
                continue;
            };
            session = session.with_retry(self.config.retry);
            if self.config.fast_capture {
                session = session.with_fast_capture();
            }
            let Ok(survey) = mc_analysis::survey_module_list(&mut session) else {
                elapsed += session.elapsed();
                unreadable.push(vm_name);
                continue;
            };

            // What the guest claims: every linked entry's base; what it
            // half-admits: every orphan's base (the unlink residue still
            // names its image).
            let claimed: BTreeSet<u64> = survey.linked.iter().filter_map(|e| e.base).collect();
            let orphan_bases: BTreeSet<u64> =
                survey.orphans.iter().filter_map(|e| e.base).collect();

            let mut ev = VmEvidence::default();
            for orphan in &survey.orphans {
                if let Some(name) = &orphan.name {
                    ev.hidden.insert(name.to_lowercase(), orphan.size);
                }
            }

            // Physical sweep over the span the claims bracket.
            let anchors: Vec<u64> = claimed.iter().chain(&orphan_bases).copied().collect();
            if let (Some(&lo), Some(&hi)) = (anchors.iter().min(), anchors.iter().max()) {
                let margin = self.config.margin_pages * PAGE_SIZE as u64;
                let top = survey
                    .linked
                    .iter()
                    .chain(&survey.orphans)
                    .filter_map(|e| Some(e.base? + e.size.unwrap_or(0)))
                    .max()
                    .unwrap_or(hi);
                let hits =
                    session.sweep_image_headers(lo.saturating_sub(margin), top.max(hi) + margin);
                for hit in hits {
                    if claimed.contains(&hit.base) {
                        continue; // the list accounts for it
                    }
                    if orphan_bases.contains(&hit.base) {
                        continue; // corroborates a hidden-module finding
                    }
                    // Attribute by unique SizeOfImage match among listed
                    // entries — the blinding signature: the victim entry
                    // advertises the true size but claims the decoy base.
                    let matches: Vec<&str> = survey
                        .linked
                        .iter()
                        .filter(|e| e.size == Some(hit.size_of_image))
                        .filter_map(|e| e.name.as_deref())
                        .collect();
                    let module = match matches.as_slice() {
                        [one] => Some(one.to_lowercase()),
                        _ => None,
                    };
                    ev.unlisted.insert((module, hit.size_of_image));
                }
            }
            elapsed += session.elapsed();
            evidence.push((vm_name, ev));
        }

        let total = evidence.len();
        if total < 2 {
            return Err(CheckError::PoolTooSmall(total));
        }

        // Pool vote: identical evidence keys across a strict majority of
        // readable VMs become findings.
        let mut hidden_votes: BTreeMap<String, (Vec<String>, Option<u64>)> = BTreeMap::new();
        let mut unlisted_votes: BTreeMap<(Option<String>, u64), Vec<String>> = BTreeMap::new();
        for (vm_name, ev) in &evidence {
            for (name, size) in &ev.hidden {
                let slot = hidden_votes.entry(name.clone()).or_default();
                slot.0.push(vm_name.clone());
                slot.1 = slot.1.or(*size);
            }
            for key in &ev.unlisted {
                unlisted_votes
                    .entry(key.clone())
                    .or_default()
                    .push(vm_name.clone());
            }
        }

        let mut findings = Vec::new();
        for (module, (mut vms, size)) in hidden_votes {
            if vms.len() * 2 > total {
                vms.sort();
                findings.push(CrossViewFinding {
                    kind: CrossViewKind::HiddenModule,
                    module: Some(module),
                    size,
                    votes: vms.len(),
                    total,
                    vms,
                });
            }
        }
        for ((module, size), mut vms) in unlisted_votes {
            if vms.len() * 2 > total {
                vms.sort();
                findings.push(CrossViewFinding {
                    kind: CrossViewKind::UnlistedImage,
                    module,
                    size: Some(size),
                    votes: vms.len(),
                    total,
                    vms,
                });
            }
        }
        findings.sort_by(|a, b| {
            (a.kind, &a.module, a.size)
                .partial_cmp(&(b.kind, &b.module, b.size))
                .expect("total order")
        });

        Ok(CrossViewReport {
            vms_scanned: total,
            unreadable,
            findings,
            elapsed,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_guest::build_cloud_with_modules;
    use mc_hypervisor::AddressWidth;
    use mc_pe::corpus::ModuleBlueprint;

    fn cloud(n: usize) -> (Hypervisor, Vec<mc_guest::GuestOs>, Vec<VmId>) {
        let mut hv = Hypervisor::new();
        let bps = vec![
            ModuleBlueprint::new("hal.dll", AddressWidth::W32, 8 * 1024),
            ModuleBlueprint::new("ndis.sys", AddressWidth::W32, 12 * 1024),
        ];
        let guests = build_cloud_with_modules(&mut hv, n, AddressWidth::W32, &bps).unwrap();
        let ids = guests.iter().map(|g| g.vm).collect();
        (hv, guests, ids)
    }

    #[test]
    fn clean_pool_has_zero_findings() {
        let (hv, _guests, ids) = cloud(4);
        let report = CrossView::new().scan(&hv, &ids).unwrap();
        assert!(report.is_clean(), "{report}");
        assert_eq!(report.vms_scanned, 4);
        assert!(report.unreadable.is_empty());
    }

    #[test]
    fn pool_wide_dkom_unlink_is_voted_hidden() {
        let (mut hv, guests, ids) = cloud(4);
        for g in &guests {
            g.dkom_hide(&mut hv, "ndis.sys").unwrap();
        }
        let report = CrossView::new().scan(&hv, &ids).unwrap();
        let hidden: Vec<_> = report.hidden_modules().collect();
        assert_eq!(hidden.len(), 1, "{report}");
        assert_eq!(hidden[0].module.as_deref(), Some("ndis.sys"));
        assert_eq!(hidden[0].votes, 4);
        // The still-mapped image corroborates the orphan rather than
        // producing a second finding.
        assert_eq!(report.unlisted_images().count(), 0);
    }

    #[test]
    fn minority_dkom_stays_below_the_vote() {
        // One-VM DKOM is the list diff's job (MissingOn); cross-view only
        // votes pool-wide evidence so it cannot double-report.
        let (mut hv, guests, ids) = cloud(5);
        guests[2].dkom_hide(&mut hv, "ndis.sys").unwrap();
        let report = CrossView::new().scan(&hv, &ids).unwrap();
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn pool_too_small_rejected() {
        let (hv, _guests, ids) = cloud(1);
        assert!(matches!(
            CrossView::new().scan(&hv, &ids),
            Err(CheckError::PoolTooSmall(1))
        ));
    }
}
