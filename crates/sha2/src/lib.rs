//! SHA-256 message digest, implemented from scratch per FIPS 180-4.
//!
//! The paper fingerprints module parts with MD5 (via OpenSSL, 2012-era).
//! MD5's collision weakness is largely immaterial to *cross-VM consistency*
//! checking — defeating ModChecker requires a second preimage of the clean
//! module's parts, not a free collision pair — but digest agility is cheap
//! hygiene, and the cost difference is worth measuring (ablation ABL-6).
//! This crate provides SHA-256 with the same one-shot/incremental API shape
//! as `mc-md5`, validated against the FIPS/NIST test vectors.
//!
//! # Examples
//!
//! ```
//! let d = mc_sha2::sha256(b"abc");
//! assert_eq!(
//!     d.to_hex(),
//!     "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
//! );
//! ```

#![warn(missing_docs)]

use std::fmt;

/// Round constants: first 32 bits of the fractional parts of the cube
/// roots of the first 64 primes.
const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// Initial hash state: first 32 bits of the fractional parts of the square
/// roots of the first 8 primes.
const INIT: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// A 256-bit SHA-256 digest.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Digest(pub [u8; 32]);

impl Digest {
    /// Lowercase hexadecimal rendering.
    pub fn to_hex(&self) -> String {
        let mut s = String::with_capacity(64);
        for b in self.0 {
            use fmt::Write as _;
            let _ = write!(s, "{b:02x}");
        }
        s
    }

    /// Raw digest bytes.
    pub fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }
}

impl fmt::Debug for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Sha256({})", self.to_hex())
    }
}

impl fmt::Display for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

/// Incremental SHA-256 context.
#[derive(Clone, Debug)]
pub struct Sha256 {
    state: [u32; 8],
    len: u64,
    buf: [u8; 64],
    buf_len: usize,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// Creates a fresh context.
    pub fn new() -> Self {
        Sha256 {
            state: INIT,
            len: 0,
            buf: [0u8; 64],
            buf_len: 0,
        }
    }

    /// Absorbs `data`.
    pub fn update(&mut self, data: &[u8]) {
        self.len = self.len.wrapping_add(data.len() as u64);
        let mut rest = data;

        if self.buf_len > 0 {
            let take = rest.len().min(64 - self.buf_len);
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&rest[..take]);
            self.buf_len += take;
            rest = &rest[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            } else {
                debug_assert!(rest.is_empty());
                return;
            }
        }

        let mut chunks = rest.chunks_exact(64);
        for block in &mut chunks {
            let mut b = [0u8; 64];
            b.copy_from_slice(block);
            self.compress(&b);
        }
        let tail = chunks.remainder();
        self.buf[..tail.len()].copy_from_slice(tail);
        self.buf_len = tail.len();
    }

    /// Applies FIPS 180-4 padding and returns the digest.
    pub fn finalize(mut self) -> Digest {
        let bit_len = self.len.wrapping_mul(8);
        self.update(&[0x80]);
        while self.buf_len != 56 {
            self.update(&[0]);
        }
        // Big-endian length, unlike MD5.
        self.update(&bit_len.to_be_bytes());
        debug_assert_eq!(self.buf_len, 0);

        let mut out = [0u8; 32];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        Digest(out)
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 64];
        for (i, word) in w.iter_mut().take(16).enumerate() {
            *word = u32::from_be_bytes([
                block[i * 4],
                block[i * 4 + 1],
                block[i * 4 + 2],
                block[i * 4 + 3],
            ]);
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }

        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }

        for (s, v) in self.state.iter_mut().zip([a, b, c, d, e, f, g, h]) {
            *s = s.wrapping_add(v);
        }
    }
}

/// One-shot SHA-256 of `data`.
pub fn sha256(data: &[u8]) -> Digest {
    let mut ctx = Sha256::new();
    ctx.update(data);
    ctx.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// FIPS 180-4 / NIST CAVS vectors.
    const VECTORS: &[(&str, &str)] = &[
        (
            "",
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855",
        ),
        (
            "abc",
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad",
        ),
        (
            "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1",
        ),
        (
            "abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijklmnoijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu",
            "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1",
        ),
    ];

    #[test]
    fn fips_vectors() {
        for (input, expected) in VECTORS {
            assert_eq!(sha256(input.as_bytes()).to_hex(), *expected, "{input:?}");
        }
    }

    #[test]
    fn million_a_vector() {
        // The classic "one million 'a'" vector.
        let mut ctx = Sha256::new();
        let chunk = [b'a'; 1000];
        for _ in 0..1000 {
            ctx.update(&chunk);
        }
        assert_eq!(
            ctx.finalize().to_hex(),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn incremental_matches_oneshot_at_boundaries() {
        for len in [0usize, 1, 55, 56, 57, 63, 64, 65, 127, 128, 129, 1000] {
            let data: Vec<u8> = (0..len).map(|i| (i * 37 % 251) as u8).collect();
            let mut ctx = Sha256::new();
            for chunk in data.chunks(9) {
                ctx.update(chunk);
            }
            assert_eq!(ctx.finalize(), sha256(&data), "len {len}");
        }
    }

    #[test]
    fn bit_flip_changes_digest() {
        let data = vec![0x5Au8; 500];
        let base = sha256(&data);
        let mut flipped = data.clone();
        flipped[250] ^= 0x80;
        assert_ne!(sha256(&flipped), base);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn incremental_equals_oneshot(data in proptest::collection::vec(any::<u8>(), 0..2048),
                                          chunk in 1usize..128) {
                let mut ctx = Sha256::new();
                for c in data.chunks(chunk) {
                    ctx.update(c);
                }
                prop_assert_eq!(ctx.finalize(), sha256(&data));
            }
        }
    }
}
