//! Observability layer for the ModChecker reproduction.
//!
//! The paper's evaluation (Figures 6–8) is entirely timing- and
//! overhead-based, so the reproduction needs one coherent place where
//! simulated cost lands instead of counters scattered across `VmiStats`,
//! `CacheStats` and ad-hoc ledgers. This crate provides that substrate:
//!
//! * [`TraceSpan`] + the [`span!`] macro — a lightweight span tree charged in
//!   *simulated* nanoseconds (the same currency as the `simtime` ledger), so
//!   a scan decomposes into capture → page-map → parse → hash → vote with no
//!   lost or double-charged time.
//! * [`MetricsRegistry`] — named counters, gauges and histograms that the
//!   hypervisor, VMI and core crates all register into.
//! * Exporters — Prometheus-style text ([`MetricsRegistry::to_prometheus_text`]),
//!   JSON ([`MetricsRegistry::to_json`]) and JSONL span dumps
//!   ([`TraceSpan::to_jsonl`]).
//! * A minimal JSON-schema [`schema`] validator so CI can gate the JSON
//!   export against a checked-in schema without network dependencies.
//!
//! Everything here is deterministic: maps are `BTreeMap`s, exports are
//! sorted, and no wall-clock time is ever read. Two scans that perform the
//! same simulated work export byte-identical documents.

#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::fmt::Display;
use std::fmt::Write as _;

use serde_json::{json, Value};

/// Converts simulated nanoseconds to milliseconds for human-facing exports.
#[must_use]
#[allow(clippy::cast_precision_loss)]
pub fn ns_to_ms(ns: u64) -> f64 {
    ns as f64 / 1_000_000.0
}

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

/// Default histogram bucket upper bounds, in simulated milliseconds.
///
/// Chosen to straddle the paper's reported per-module scan times (tens of
/// milliseconds for a single capture, hundreds for a pool sweep).
pub const DEFAULT_BUCKETS_MS: [f64; 12] = [
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0,
];

/// A fixed-bucket histogram in the Prometheus style: per-bucket counts, a
/// running sum and a total count. Observations above the last bound land in
/// an implicit `+Inf` overflow bucket.
#[derive(Clone, Debug, PartialEq)]
pub struct Histogram {
    bounds: Vec<f64>,
    counts: Vec<u64>,
    sum: f64,
    count: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::with_bounds(&DEFAULT_BUCKETS_MS)
    }
}

impl Histogram {
    /// Creates a histogram with the given ascending bucket upper bounds.
    #[must_use]
    pub fn with_bounds(bounds: &[f64]) -> Self {
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            sum: 0.0,
            count: 0,
        }
    }

    /// Records one observation.
    pub fn observe(&mut self, v: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.sum += v;
        self.count += 1;
    }

    /// Total number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations.
    #[must_use]
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Cumulative `(upper_bound, count)` pairs, ending with the `+Inf`
    /// bucket (whose bound is `f64::INFINITY` and count equals `count()`).
    #[must_use]
    pub fn cumulative_buckets(&self) -> Vec<(f64, u64)> {
        let mut running = 0;
        let mut out = Vec::with_capacity(self.bounds.len() + 1);
        for (i, &b) in self.bounds.iter().enumerate() {
            running += self.counts[i];
            out.push((b, running));
        }
        out.push((f64::INFINITY, self.count));
        out
    }

    /// Folds another histogram into this one. The bucket layouts must match;
    /// mismatched layouts are ignored rather than corrupting counts.
    pub fn merge(&mut self, other: &Histogram) {
        if self.bounds != other.bounds {
            return;
        }
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        self.sum += other.sum;
        self.count += other.count;
    }

    fn to_json(&self) -> Value {
        let buckets: Vec<Value> = self
            .cumulative_buckets()
            .iter()
            .map(|&(le, count)| {
                if le.is_finite() {
                    json!({ "le": le, "count": count })
                } else {
                    json!({ "le": "+Inf", "count": count })
                }
            })
            .collect();
        json!({ "count": self.count, "sum": self.sum, "buckets": buckets })
    }
}

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

/// A central registry of named counters (monotonic `u64`), gauges (`f64`
/// point-in-time values) and [`Histogram`]s.
///
/// Names are sorted on export, so two registries holding the same values
/// always serialize identically — the property the sequential-vs-parallel
/// determinism tests pin down.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    #[must_use]
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Adds `delta` to the named counter, creating it at zero first.
    pub fn counter_add(&mut self, name: &str, delta: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Current value of a counter (zero if never touched).
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Sets the named gauge to `v`.
    pub fn gauge_set(&mut self, name: &str, v: f64) {
        self.gauges.insert(name.to_string(), v);
    }

    /// Current value of a gauge, if it has been set.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Records one observation into the named histogram (created with
    /// [`DEFAULT_BUCKETS_MS`] on first touch).
    pub fn observe(&mut self, name: &str, v: f64) {
        self.histograms
            .entry(name.to_string())
            .or_default()
            .observe(v);
    }

    /// The named histogram, if any observation has been recorded.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Sorted iterator over `(name, value)` counters.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Sorted iterator over `(name, value)` gauges.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, f64)> {
        self.gauges.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// True when nothing has been registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Folds another registry into this one: counters add, gauges take the
    /// other's value (last write wins), histograms merge.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (name, v) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0) += v;
        }
        for (name, v) in &other.gauges {
            self.gauges.insert(name.clone(), *v);
        }
        for (name, h) in &other.histograms {
            self.histograms
                .entry(name.clone())
                .or_insert_with(|| Histogram::with_bounds(&h.bounds))
                .merge(h);
        }
    }

    /// Renders the registry in the Prometheus text exposition format:
    /// `# TYPE` comments, bare `name value` samples, and `_bucket`/`_sum`/
    /// `_count` series for histograms.
    #[must_use]
    pub fn to_prometheus_text(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            let _ = writeln!(out, "# TYPE {name} counter\n{name} {v}");
        }
        for (name, v) in &self.gauges {
            let _ = writeln!(out, "# TYPE {name} gauge\n{name} {v}");
        }
        for (name, h) in &self.histograms {
            let _ = writeln!(out, "# TYPE {name} histogram");
            for (le, count) in h.cumulative_buckets() {
                if le.is_finite() {
                    let _ = writeln!(out, "{name}_bucket{{le=\"{le}\"}} {count}");
                } else {
                    let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {count}");
                }
            }
            let _ = writeln!(out, "{name}_sum {}\n{name}_count {}", h.sum, h.count);
        }
        out
    }

    /// Renders the registry as a three-section JSON document:
    /// `{"counters": {..}, "gauges": {..}, "histograms": {..}}`.
    #[must_use]
    pub fn to_json(&self) -> Value {
        let counters: Vec<(String, Value)> = self
            .counters
            .iter()
            .map(|(k, v)| (k.clone(), serde_json::to_value(v)))
            .collect();
        let gauges: Vec<(String, Value)> = self
            .gauges
            .iter()
            .map(|(k, v)| (k.clone(), serde_json::to_value(v)))
            .collect();
        let histograms: Vec<(String, Value)> = self
            .histograms
            .iter()
            .map(|(k, h)| (k.clone(), h.to_json()))
            .collect();
        json!({
            "counters": Value::Object(counters),
            "gauges": Value::Object(gauges),
            "histograms": Value::Object(histograms),
        })
    }
}

/// Checks one line of Prometheus text-format output: either a `#` comment or
/// `name[{label="value",...}] number` with a valid metric identifier.
#[must_use]
pub fn is_valid_prometheus_line(line: &str) -> bool {
    if line.starts_with('#') {
        return line.starts_with("# ");
    }
    let ident_end = line
        .find(|c: char| !(c.is_ascii_alphanumeric() || c == '_' || c == ':'))
        .unwrap_or(line.len());
    if ident_end == 0 || line.as_bytes()[0].is_ascii_digit() {
        return false;
    }
    let mut rest = &line[ident_end..];
    if let Some(close) = rest.strip_prefix('{').and_then(|r| r.find('}')) {
        // Labels: every pair must look like key="value".
        let labels = &rest[1..=close];
        let all_quoted = labels.split(',').all(|pair| {
            pair.split_once('=')
                .is_some_and(|(_, v)| v.len() >= 2 && v.starts_with('"') && v.ends_with('"'))
        });
        if !all_quoted {
            return false;
        }
        rest = &rest[close + 2..];
    }
    let value = rest.trim_start();
    !value.is_empty() && (value == "+Inf" || value == "-Inf" || value.parse::<f64>().is_ok())
}

// ---------------------------------------------------------------------------
// TraceSpan
// ---------------------------------------------------------------------------

/// One node of a simulated-time span tree.
///
/// A span records the *simulated* duration of a named phase, plus the retry
/// and fault-injection counts attributed to it, and nests child spans. The
/// accounting identity the observability tests pin is: a parent's duration
/// equals the sum of its children's durations plus its own
/// [`self_time_ns`](TraceSpan::self_time_ns).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TraceSpan {
    /// Phase name, e.g. `"capture"` or `"vote"`.
    pub name: String,
    /// Free-form `key=value` attributes (VM name, module, strategy, …).
    pub attrs: Vec<(String, String)>,
    /// Simulated duration in nanoseconds, children included.
    pub duration_ns: u64,
    /// Retries charged to this span.
    pub retries: u64,
    /// Injected faults observed during this span.
    pub faults: u64,
    /// Nested child spans, in execution order.
    pub children: Vec<TraceSpan>,
}

impl TraceSpan {
    /// Creates a span with the given name and everything else zeroed.
    #[must_use]
    pub fn new(name: &str) -> Self {
        TraceSpan {
            name: name.to_string(),
            ..TraceSpan::default()
        }
    }

    /// Attaches a `key=value` attribute (builder style).
    #[must_use]
    pub fn with_attr(mut self, key: &str, value: &impl Display) -> Self {
        self.attrs.push((key.to_string(), value.to_string()));
        self
    }

    /// Sets the simulated duration (builder style).
    #[must_use]
    pub fn with_duration_ns(mut self, ns: u64) -> Self {
        self.duration_ns = ns;
        self
    }

    /// Sets the retry count (builder style).
    #[must_use]
    pub fn with_retries(mut self, retries: u64) -> Self {
        self.retries = retries;
        self
    }

    /// Sets the fault count (builder style).
    #[must_use]
    pub fn with_faults(mut self, faults: u64) -> Self {
        self.faults = faults;
        self
    }

    /// Appends a child span.
    pub fn push(&mut self, child: TraceSpan) {
        self.children.push(child);
    }

    /// Sum of the direct children's durations.
    #[must_use]
    pub fn children_total_ns(&self) -> u64 {
        self.children.iter().map(|c| c.duration_ns).sum()
    }

    /// Time charged to this span itself, i.e. duration not covered by
    /// children (saturating — never negative).
    #[must_use]
    pub fn self_time_ns(&self) -> u64 {
        self.duration_ns.saturating_sub(self.children_total_ns())
    }

    /// Total retries in this span and all descendants.
    #[must_use]
    pub fn total_retries(&self) -> u64 {
        self.retries
            + self
                .children
                .iter()
                .map(TraceSpan::total_retries)
                .sum::<u64>()
    }

    /// Total faults in this span and all descendants.
    #[must_use]
    pub fn total_faults(&self) -> u64 {
        self.faults
            + self
                .children
                .iter()
                .map(TraceSpan::total_faults)
                .sum::<u64>()
    }

    /// Renders the subtree as a nested JSON object.
    #[must_use]
    pub fn to_json(&self) -> Value {
        let attrs: Vec<(String, Value)> = self
            .attrs
            .iter()
            .map(|(k, v)| (k.clone(), Value::String(v.clone())))
            .collect();
        let children: Vec<Value> = self.children.iter().map(TraceSpan::to_json).collect();
        json!({
            "name": self.name,
            "attrs": Value::Object(attrs),
            "duration_ns": self.duration_ns,
            "retries": self.retries,
            "faults": self.faults,
            "children": children,
        })
    }

    /// Renders the subtree as JSONL: one compact JSON object per span,
    /// depth-first, each carrying its slash-joined `path` and `depth`.
    #[must_use]
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        self.write_jsonl(&mut String::new(), 0, &mut out);
        out
    }

    fn write_jsonl(&self, path: &mut String, depth: usize, out: &mut String) {
        let parent_len = path.len();
        if depth > 0 {
            path.push('/');
        }
        path.push_str(&self.name);
        let attrs: Vec<(String, Value)> = self
            .attrs
            .iter()
            .map(|(k, v)| (k.clone(), Value::String(v.clone())))
            .collect();
        let line = json!({
            "path": path.as_str(),
            "depth": depth,
            "name": self.name,
            "duration_ns": self.duration_ns,
            "self_ns": self.self_time_ns(),
            "retries": self.retries,
            "faults": self.faults,
            "attrs": Value::Object(attrs),
        });
        out.push_str(&serde_json::to_string(&line).expect("compact JSON writer is total"));
        out.push('\n');
        for child in &self.children {
            child.write_jsonl(path, depth + 1, out);
        }
        path.truncate(parent_len);
    }
}

/// Builds a [`TraceSpan`] with optional `key = value` attributes:
/// `span!("capture", vm = name, module = module)`. Attribute values are
/// captured by reference through `Display`.
#[macro_export]
macro_rules! span {
    ($name:expr) => { $crate::TraceSpan::new($name) };
    ($name:expr, $($key:ident = $val:expr),+ $(,)?) => {
        $crate::TraceSpan::new($name)$(.with_attr(stringify!($key), &$val))+
    };
}

// ---------------------------------------------------------------------------
// Schema validation
// ---------------------------------------------------------------------------

/// A minimal JSON-schema validator covering the subset CI's metrics gate
/// needs: `type` (string or list), `required`, `properties`, `items` and
/// `additionalProperties` (as a schema).
pub mod schema {
    use serde_json::Value;

    /// Validates `value` against `schema`, returning every violation found.
    ///
    /// # Errors
    ///
    /// Returns the list of violations, each prefixed with a `/`-joined path
    /// into the document.
    pub fn validate(value: &Value, schema: &Value) -> Result<(), Vec<String>> {
        let mut errors = Vec::new();
        validate_at(value, schema, "$", &mut errors);
        if errors.is_empty() {
            Ok(())
        } else {
            Err(errors)
        }
    }

    fn validate_at(value: &Value, schema: &Value, path: &str, errors: &mut Vec<String>) {
        if let Some(ty) = schema.get("type") {
            let allowed: Vec<&str> = match ty {
                Value::String(s) => vec![s.as_str()],
                Value::Array(list) => list.iter().filter_map(Value::as_str).collect(),
                _ => Vec::new(),
            };
            if !allowed.iter().any(|t| type_matches(value, t)) {
                errors.push(format!("{path}: expected type {allowed:?}"));
                return;
            }
        }
        if let Some(required) = schema.get("required").and_then(Value::as_array) {
            for name in required.iter().filter_map(Value::as_str) {
                if value.get(name).is_none() {
                    errors.push(format!("{path}: missing required key \"{name}\""));
                }
            }
        }
        if let Some(pairs) = value.as_object() {
            let props = schema.get("properties");
            let additional = schema.get("additionalProperties");
            for (key, child) in pairs {
                let child_path = format!("{path}/{key}");
                if let Some(sub) = props.and_then(|p| p.get(key)) {
                    validate_at(child, sub, &child_path, errors);
                } else if let Some(extra) = additional {
                    match extra {
                        Value::Bool(false) => {
                            errors.push(format!("{path}: unexpected key \"{key}\""));
                        }
                        Value::Object(_) => validate_at(child, extra, &child_path, errors),
                        _ => {}
                    }
                }
            }
        }
        if let (Some(elems), Some(items)) = (value.as_array(), schema.get("items")) {
            for (i, elem) in elems.iter().enumerate() {
                validate_at(elem, items, &format!("{path}/{i}"), errors);
            }
        }
    }

    fn type_matches(value: &Value, ty: &str) -> bool {
        match ty {
            "null" => value.is_null(),
            "boolean" => value.as_bool().is_some(),
            "integer" => value.as_i64().is_some(),
            "number" => value.as_f64().is_some(),
            "string" => value.as_str().is_some(),
            "array" => value.as_array().is_some(),
            "object" => value.as_object().is_some(),
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_default_to_zero() {
        let mut reg = MetricsRegistry::new();
        assert_eq!(reg.counter("vmi_reads_total"), 0);
        reg.counter_add("vmi_reads_total", 3);
        reg.counter_add("vmi_reads_total", 2);
        assert_eq!(reg.counter("vmi_reads_total"), 5);
        assert!(!reg.is_empty());
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_end_at_inf() {
        let mut h = Histogram::with_bounds(&[1.0, 10.0]);
        h.observe(0.5);
        h.observe(5.0);
        h.observe(100.0);
        let buckets = h.cumulative_buckets();
        assert_eq!(buckets[0], (1.0, 1));
        assert_eq!(buckets[1], (10.0, 2));
        assert_eq!(buckets[2].1, 3);
        assert!(buckets[2].0.is_infinite());
        assert_eq!(h.count(), 3);
        assert!((h.sum() - 105.5).abs() < 1e-9);
    }

    #[test]
    fn merge_adds_counters_and_histograms() {
        let mut a = MetricsRegistry::new();
        a.counter_add("c", 1);
        a.gauge_set("g", 1.0);
        a.observe("h", 2.0);
        let mut b = MetricsRegistry::new();
        b.counter_add("c", 2);
        b.gauge_set("g", 7.0);
        b.observe("h", 3.0);
        a.merge(&b);
        assert_eq!(a.counter("c"), 3);
        assert_eq!(a.gauge("g"), Some(7.0));
        assert_eq!(a.histogram("h").unwrap().count(), 2);
    }

    #[test]
    fn exports_are_sorted_and_well_formed() {
        let mut reg = MetricsRegistry::new();
        reg.counter_add("z_total", 1);
        reg.counter_add("a_total", 2);
        reg.gauge_set("mid_ms", 1.5);
        reg.observe("lat_ms", 0.2);
        let text = reg.to_prometheus_text();
        let a_pos = text.find("a_total 2").unwrap();
        let z_pos = text.find("z_total 1").unwrap();
        assert!(a_pos < z_pos);
        assert!(text.contains("lat_ms_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("lat_ms_count 1"));
        for line in text.lines() {
            assert!(is_valid_prometheus_line(line), "bad line: {line}");
        }
        let doc = reg.to_json();
        assert_eq!(
            doc.get("counters")
                .and_then(|c| c.get("a_total"))
                .and_then(Value::as_u64),
            Some(2)
        );
        assert_eq!(
            doc.get("gauges")
                .and_then(|g| g.get("mid_ms"))
                .and_then(Value::as_f64),
            Some(1.5)
        );
    }

    #[test]
    fn prometheus_line_checker_rejects_malformed_lines() {
        assert!(is_valid_prometheus_line("scan_total_ms 12.5"));
        assert!(is_valid_prometheus_line("lat_bucket{le=\"0.5\"} 3"));
        assert!(is_valid_prometheus_line("# TYPE x counter"));
        assert!(!is_valid_prometheus_line("9starts_with_digit 1"));
        assert!(!is_valid_prometheus_line("name_only"));
        assert!(!is_valid_prometheus_line("bad{le=0.5} 3"));
        assert!(!is_valid_prometheus_line("name not_a_number"));
    }

    #[test]
    fn span_macro_builds_attributed_spans() {
        let vm = "dom1";
        let s = span!("capture", vm = vm, module = "hal.dll").with_duration_ns(42);
        assert_eq!(s.name, "capture");
        assert_eq!(s.attrs[0], ("vm".to_string(), "dom1".to_string()));
        assert_eq!(s.attrs[1].1, "hal.dll");
        assert_eq!(s.duration_ns, 42);
    }

    #[test]
    fn span_tree_accounting_identity_holds() {
        let mut root = span!("check_pool").with_duration_ns(100);
        root.push(span!("capture").with_duration_ns(60).with_retries(2));
        root.push(span!("vote").with_duration_ns(30).with_faults(1));
        assert_eq!(root.children_total_ns(), 90);
        assert_eq!(root.self_time_ns(), 10);
        assert_eq!(root.total_retries(), 2);
        assert_eq!(root.total_faults(), 1);
    }

    #[test]
    fn jsonl_emits_one_parseable_line_per_span_with_paths() {
        let mut root = span!("check_pool", module = "hal.dll").with_duration_ns(10);
        let mut capture = span!("capture", vm = "dom1").with_duration_ns(8);
        capture.push(span!("parse").with_duration_ns(3));
        root.push(capture);
        let jsonl = root.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 3);
        let parsed: Vec<Value> = lines
            .iter()
            .map(|l| serde_json::from_str(l).unwrap())
            .collect();
        assert_eq!(
            parsed[0].get("path").and_then(Value::as_str),
            Some("check_pool")
        );
        assert_eq!(
            parsed[2].get("path").and_then(Value::as_str),
            Some("check_pool/capture/parse")
        );
        assert_eq!(parsed[1].get("depth").and_then(Value::as_i64), Some(1));
        assert_eq!(parsed[0].get("self_ns").and_then(Value::as_u64), Some(2));
    }

    #[test]
    fn schema_validator_accepts_and_rejects() {
        let schema = serde_json::from_str(
            r#"{
                "type": "object",
                "required": ["counters"],
                "properties": {
                    "counters": {
                        "type": "object",
                        "additionalProperties": {"type": "integer"}
                    },
                    "note": {"type": ["string", "null"]}
                }
            }"#,
        )
        .unwrap();
        let good = serde_json::from_str(r#"{"counters": {"x": 1}, "note": null}"#).unwrap();
        assert!(schema::validate(&good, &schema).is_ok());
        let bad = serde_json::from_str(r#"{"counters": {"x": 1.5}}"#).unwrap();
        let errors = schema::validate(&bad, &schema).unwrap_err();
        assert!(errors[0].contains("$/counters/x"), "{errors:?}");
        let missing = serde_json::from_str(r#"{"note": "hi"}"#).unwrap();
        assert!(schema::validate(&missing, &schema).is_err());
    }

    #[test]
    fn registry_json_round_trips_through_the_parser() {
        let mut reg = MetricsRegistry::new();
        reg.counter_add("reads_total", 7);
        reg.gauge_set("slowdown", 1.25);
        reg.observe("capture_ms", 3.0);
        let doc = reg.to_json();
        let pretty = serde_json::to_string_pretty(&doc).unwrap();
        assert_eq!(serde_json::from_str(&pretty).unwrap(), doc);
    }
}
