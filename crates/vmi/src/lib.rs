//! Virtual machine introspection — the reproduction's libVMI.
//!
//! The paper introspects guests with libvmi-0.6: from the privileged VM it
//! resolves kernel symbols, translates guest virtual addresses by walking
//! the guest's page tables, maps foreign frames, and copies memory out.
//! [`VmiSession`] provides that surface over the simulated hypervisor with
//! two properties the reproduction depends on:
//!
//! * **Read-only.** There is deliberately no write API. ModChecker "performs
//!   read-only operations of the memory of guest VMs"; the type system
//!   enforces it (a session borrows the hypervisor immutably, so guests
//!   cannot change under it, and parallel sessions are safe).
//! * **Cost-accounted.** Every read charges simulated time to the session's
//!   ledger: per-page translation + foreign-map cost plus per-byte copy
//!   cost, scaled by the host contention factor captured at attach time.
//!   The performance figures (Fig. 7/8) are integrals of this ledger.
//!
//! Processing costs (parsing, hashing, diffing) are charged by the checker
//! via [`VmiSession::charge_process`], so one ledger carries a whole
//! per-VM check and can be split per component.
//!
//! **Chaos-readiness.** When the introspected VM carries a
//! [`mc_hypervisor::FaultPlan`], the session transparently rides out
//! transient faults with a bounded exponential-backoff retry
//! ([`RetryPolicy`]), every backoff charged to the simulated-time ledger so
//! the performance figures stay honest. Bulk captures go through
//! [`VmiSession::read_va_stable`], which detects torn pages by reading
//! twice. A per-session [deadline](VmiSession::with_deadline) bounds how
//! much simulated time a misbehaving guest can consume.

#![warn(missing_docs)]

use std::collections::{HashMap, HashSet};
use std::fmt;

use mc_hypervisor::{
    AddressWidth, FaultDecision, FaultState, HvError, Hypervisor, SimDuration, Vm, VmId, PAGE_SHIFT,
};
use rand::SeedableRng;

/// Introspection errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum VmiError {
    /// Underlying guest-memory/translation failure (e.g. unmapped page —
    /// possibly a hostile guest pointing us into the void).
    Hv(HvError),
    /// No VM with this name exists on the host.
    VmNotFound(String),
    /// The requested symbol is not in the VM's profile.
    UnknownSymbol(String),
    /// A transient fault persisted past the retry budget.
    RetriesExhausted {
        /// Virtual address of the failing read.
        va: u64,
        /// Total attempts made (initial try + retries).
        attempts: u32,
        /// The last transient error observed.
        last: HvError,
    },
    /// A bulk read never produced two consecutive identical snapshots
    /// within the retry budget — the guest is dirtying the page faster
    /// than we can copy it.
    TornRead {
        /// Virtual address of the unstable read.
        va: u64,
    },
    /// The session's simulated-time deadline elapsed before the read.
    DeadlineExceeded {
        /// Simulated time consumed by the session so far.
        elapsed: SimDuration,
        /// The configured deadline.
        deadline: SimDuration,
    },
}

impl fmt::Display for VmiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmiError::Hv(e) => write!(f, "guest access failed: {e}"),
            VmiError::VmNotFound(n) => write!(f, "no VM named {n:?}"),
            VmiError::UnknownSymbol(s) => write!(f, "symbol {s:?} not in profile"),
            VmiError::RetriesExhausted { va, attempts, last } => {
                write!(
                    f,
                    "read at {va:#x} still failing after {attempts} attempts: {last}"
                )
            }
            VmiError::TornRead { va } => {
                write!(f, "read at {va:#x} unstable: guest keeps dirtying the page")
            }
            VmiError::DeadlineExceeded { elapsed, deadline } => {
                write!(
                    f,
                    "session deadline {deadline} exceeded ({elapsed} consumed)"
                )
            }
        }
    }
}

impl std::error::Error for VmiError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            VmiError::Hv(e) => Some(e),
            _ => None,
        }
    }
}

impl From<HvError> for VmiError {
    fn from(e: HvError) -> Self {
        VmiError::Hv(e)
    }
}

impl VmiError {
    /// True when the error means the VM itself is gone or out of time —
    /// conditions where continuing the scan on this VM is pointless.
    pub fn is_fatal_to_vm(&self) -> bool {
        matches!(
            self,
            VmiError::Hv(HvError::VmLost(_))
                | VmiError::VmNotFound(_)
                | VmiError::RetriesExhausted { .. }
                | VmiError::DeadlineExceeded { .. }
        )
    }
}

/// Bounded exponential-backoff retry for transient introspection faults.
///
/// Attempt `k` (0-based) that fails transiently waits
/// `backoff_base * backoff_factor^k` of simulated time before the next
/// try; after `max_retries` retries the read surfaces
/// [`VmiError::RetriesExhausted`]. Backoff is charged to the session
/// ledger *unscaled* by host contention: it models the introspector
/// sleeping, not competing for CPU.
///
/// With `jitter > 0` each wait is additionally scaled by a uniform draw
/// from `[1 − jitter/2, 1 + jitter/2]`, desynchronizing the retry storm
/// when many VMs fault in the same round. The draws come from a per-VM
/// stream seeded by the VM's id (see [`VmiSession::attach`]), so each
/// VM's schedule is distinct yet fully deterministic — sequential and
/// parallel scans stay byte-identical. `jitter: 0.0` (the default) takes
/// no draw at all, reproducing the unjittered schedule exactly.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RetryPolicy {
    /// Retries after the initial attempt (0 = fail fast).
    pub max_retries: u32,
    /// Backoff before the first retry.
    pub backoff_base: SimDuration,
    /// Multiplier applied per subsequent retry.
    pub backoff_factor: f64,
    /// Width of the uniform jitter band around each backoff, as a
    /// fraction of the wait (clamped to `[0, 1]`; `0.4` means ±20%).
    pub jitter: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 4,
            backoff_base: SimDuration::from_micros(50),
            backoff_factor: 2.0,
            jitter: 0.0,
        }
    }
}

impl RetryPolicy {
    /// Fail-fast policy: no retries, no backoff.
    pub const NONE: RetryPolicy = RetryPolicy {
        max_retries: 0,
        backoff_base: SimDuration::ZERO,
        backoff_factor: 1.0,
        jitter: 0.0,
    };

    /// A policy with `max_retries` retries and default backoff.
    pub fn with_max_retries(max_retries: u32) -> Self {
        RetryPolicy {
            max_retries,
            ..RetryPolicy::default()
        }
    }

    /// The same policy with a jitter band of `jitter` (clamped to
    /// `[0, 1]`).
    pub fn with_jitter(mut self, jitter: f64) -> Self {
        self.jitter = jitter.clamp(0.0, 1.0);
        self
    }

    /// Backoff to wait after failed attempt `attempt` (0-based), without
    /// jitter.
    pub fn backoff(&self, attempt: u32) -> SimDuration {
        self.backoff_base
            .scaled(self.backoff_factor.powi(attempt.min(62) as i32))
    }

    /// Backoff with the policy's jitter applied from `rng`. With
    /// `jitter == 0` no draw is taken — the stream, and therefore every
    /// downstream schedule, is untouched.
    pub fn jittered_backoff<R: rand::RngCore>(&self, attempt: u32, rng: &mut R) -> SimDuration {
        let base = self.backoff(attempt);
        if self.jitter <= 0.0 {
            return base;
        }
        // 53 uniform mantissa bits give a uniform float in [0, 1).
        #[allow(clippy::cast_precision_loss)]
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        let band = self.jitter.clamp(0.0, 1.0);
        base.scaled(1.0 + band * (unit - 0.5))
    }
}

/// Access statistics for one session (used by benches and tests to verify
/// the page-granular access pattern).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct VmiStats {
    /// Number of `read_va` calls.
    pub reads: u64,
    /// Guest frames mapped (one per page crossed per read; no map cache, as
    /// in the paper's sequential prototype).
    pub pages_mapped: u64,
    /// Bytes copied out of the guest.
    pub bytes_copied: u64,
    /// Page-table walks charged to the ledger. On the legacy path every
    /// chargeable page is a walk (translation is bundled into
    /// [`mc_hypervisor::CostModel::read_cost`]); on the fast path
    /// ([`VmiSession::with_fast_capture`]) only translate-cache *misses*
    /// walk, so this counter is how tests prove header parsing stopped
    /// paying a walk per field.
    pub page_walks: u64,
    /// Translations answered by the per-session translate cache instead of
    /// a page-table walk (fast path only; free of simulated time).
    pub translate_cache_hits: u64,
    /// Scatter-gather calls ([`VmiSession::read_va_vectored`] and its
    /// stable variant). Each one plans all its requests against the
    /// translate cache and charges one foreign-map per contiguous
    /// physical run.
    pub vectored_reads: u64,
    /// Retry attempts spent riding out transient faults.
    pub retries: u64,
    /// Transient faults observed (each consumed a retry or ended the read).
    pub transient_faults: u64,
    /// Torn reads detected by [`VmiSession::read_va_stable`]'s double-read.
    pub torn_detected: u64,
    /// Verification passes performed by [`VmiSession::read_va_stable`].
    /// These re-read memory that was already copied, so they are *not*
    /// counted in `reads`/`pages_mapped`/`bytes_copied` — overhead
    /// attribution would otherwise double-charge every stable read.
    pub stability_rereads: u64,
}

impl VmiStats {
    /// Adds another session's counters into this one (used to aggregate a
    /// pool scan's per-VM sessions into one report-level figure).
    pub fn accumulate(&mut self, other: &VmiStats) {
        self.reads += other.reads;
        self.pages_mapped += other.pages_mapped;
        self.bytes_copied += other.bytes_copied;
        self.page_walks += other.page_walks;
        self.translate_cache_hits += other.translate_cache_hits;
        self.vectored_reads += other.vectored_reads;
        self.retries += other.retries;
        self.transient_faults += other.transient_faults;
        self.torn_detected += other.torn_detected;
        self.stability_rereads += other.stability_rereads;
    }

    /// Registers the counters into a [`mc_obs::MetricsRegistry`] under the
    /// `vmi_*_total` names the README documents.
    pub fn record_into(&self, reg: &mut mc_obs::MetricsRegistry) {
        reg.counter_add("vmi_reads_total", self.reads);
        reg.counter_add("vmi_pages_mapped_total", self.pages_mapped);
        reg.counter_add("vmi_bytes_copied_total", self.bytes_copied);
        reg.counter_add("vmi_page_walks_total", self.page_walks);
        reg.counter_add("vmi_translate_cache_hits_total", self.translate_cache_hits);
        reg.counter_add("vmi_vectored_reads_total", self.vectored_reads);
        reg.counter_add("vmi_retries_total", self.retries);
        reg.counter_add("vmi_transient_faults_total", self.transient_faults);
        reg.counter_add("vmi_torn_detected_total", self.torn_detected);
        reg.counter_add("vmi_stability_rereads_total", self.stability_rereads);
    }
}

/// One request of a scatter-gather read: fill `buf` from guest-virtual
/// `va`. Build a slice of these and hand it to
/// [`VmiSession::read_va_vectored`] so the session can plan every page
/// walk and foreign map for the whole batch at once.
#[derive(Debug)]
pub struct VectoredRead<'a> {
    /// Guest-virtual address to read from.
    pub va: u64,
    /// Destination buffer; its length is the read length.
    pub buf: &'a mut [u8],
}

/// A memory-resident PE image located by
/// [`VmiSession::sweep_image_headers`]: a page-aligned base whose DOS/PE
/// header chain is coherent, with the `SizeOfImage` the header advertises.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ImageHit {
    /// Page-aligned guest-virtual base of the image.
    pub base: u64,
    /// `SizeOfImage` from the optional header.
    pub size_of_image: u64,
}

/// Per-session fast-path state (see [`VmiSession::with_fast_capture`]).
///
/// Caching VA→PA translations for the lifetime of a session is sound
/// because the session borrows the [`Vm`] immutably: guest page tables
/// cannot be remapped under it. The `mapped` set plays the role of the
/// legacy page cache, but map charges are per contiguous *physical* run
/// on vectored reads, not per page.
#[derive(Debug, Default)]
struct FastPathState {
    /// Page-aligned guest VA → guest PA of the backing frame.
    translate: HashMap<u64, u64>,
    /// Page-aligned guest VAs already foreign-mapped this session.
    mapped: HashSet<u64>,
}

/// An introspection session against one guest VM.
///
/// Not `derive`d `Debug`: dumping the borrowed [`Vm`] (and with it the whole
/// guest memory image) would be useless noise, so the manual impl below
/// prints only the session-level state.
pub struct VmiSession<'hv> {
    vm: &'hv Vm,
    cost: mc_hypervisor::CostModel,
    slowdown: f64,
    elapsed: SimDuration,
    /// Total simulated time ever charged — unlike `elapsed`, never reset by
    /// [`VmiSession::take_elapsed`], so the deadline measures the whole
    /// session even when the checker splits the ledger per component.
    consumed: SimDuration,
    stats: VmiStats,
    /// Pages already mapped this session (libVMI's page cache). `None`
    /// reproduces the paper's prototype, which pays the foreign-map cost on
    /// every access (ablation ABL-5 measures the difference).
    page_cache: Option<HashSet<u64>>,
    /// Scatter-gather fast path: translate cache + run-batched foreign
    /// maps. `None` (the default) keeps the legacy bundled
    /// `read_cost(pages, bytes)` ledger for ablation and goldens.
    fast: Option<FastPathState>,
    /// Injected-fault state, present iff the VM carries a fault plan. The
    /// state lives in the session (not the shared `Vm`), keeping parallel
    /// scans data-race free and deterministic per (seed, VM id).
    fault: Option<FaultState>,
    retry: RetryPolicy,
    /// Per-VM jitter stream for [`RetryPolicy::jittered_backoff`]: seeded
    /// from the VM id at attach, so every VM desynchronizes differently
    /// while sequential and parallel scans stay byte-identical.
    jitter_rng: rand::rngs::StdRng,
    deadline: Option<SimDuration>,
}

impl fmt::Debug for VmiSession<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("VmiSession")
            .field("vm", &self.vm.name)
            .field("slowdown", &self.slowdown)
            .field("elapsed", &self.elapsed)
            .field("consumed", &self.consumed)
            .field("stats", &self.stats)
            .field("page_cache", &self.page_cache.as_ref().map(HashSet::len))
            .field("fast", &self.fast.is_some())
            .field("faulty", &self.fault.is_some())
            .field("retry", &self.retry)
            .field("deadline", &self.deadline)
            .finish()
    }
}

impl<'hv> VmiSession<'hv> {
    /// Attaches to a VM by id. Charges the attach cost. Fails with
    /// [`HvError::VmLost`] if the VM's fault plan lost it before any read.
    pub fn attach(hv: &'hv Hypervisor, id: VmId) -> Result<Self, VmiError> {
        let vm = hv.vm(id)?;
        let fault = match vm.fault_plan {
            Some(plan) => {
                let state = FaultState::new(id, plan);
                state.on_attach()?;
                Some(state)
            }
            None => None,
        };
        let slowdown = hv.dom0_slowdown();
        let mut s = VmiSession {
            vm,
            cost: hv.cost,
            slowdown,
            elapsed: SimDuration::ZERO,
            consumed: SimDuration::ZERO,
            stats: VmiStats::default(),
            page_cache: None,
            fast: None,
            fault,
            retry: RetryPolicy::default(),
            jitter_rng: rand::rngs::StdRng::seed_from_u64(
                0x6A17_7E12_u64 ^ (u64::from(id.0) << 17),
            ),
            deadline: None,
        };
        s.charge(SimDuration::from_nanos(s.cost.vmi_attach_ns));
        Ok(s)
    }

    /// Enables the page-map cache for this session: a page crossed more
    /// than once charges its translation + foreign-map cost only the first
    /// time (per-byte copy costs still accrue). Mirrors libVMI's
    /// `--enable-address-cache`; the paper's prototype runs uncached.
    pub fn with_page_cache(mut self) -> Self {
        self.page_cache = Some(HashSet::new());
        self
    }

    /// Enables the capture fast path: a per-session translate cache (one
    /// page-table walk per distinct page, ever), first-touch foreign maps,
    /// and scatter-gather planning for [`VmiSession::read_va_vectored`]
    /// that charges one map per contiguous *physical* run. The ledger
    /// splits [`mc_hypervisor::CostModel::translate_ns`] (per walk) from
    /// [`mc_hypervisor::CostModel::page_map_ns`] (per run) instead of
    /// bundling both per page, so the win shows up in simulated time.
    /// Off by default — the legacy ledger is the ablation baseline.
    pub fn with_fast_capture(mut self) -> Self {
        self.fast = Some(FastPathState::default());
        self
    }

    /// True when [`VmiSession::with_fast_capture`] is enabled.
    pub fn fast_capture(&self) -> bool {
        self.fast.is_some()
    }

    /// Sets the retry policy for transient faults (default:
    /// [`RetryPolicy::default`]; [`RetryPolicy::NONE`] fails fast).
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Bounds the *total* simulated time this session may consume. Once
    /// exceeded, every further read fails with
    /// [`VmiError::DeadlineExceeded`]. The budget survives
    /// [`VmiSession::take_elapsed`] — it measures the session, not one
    /// ledger split.
    pub fn with_deadline(mut self, deadline: SimDuration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Attaches to a VM by domain name.
    pub fn attach_by_name(hv: &'hv Hypervisor, name: &str) -> Result<Self, VmiError> {
        let vm = hv
            .vm_by_name(name)
            .ok_or_else(|| VmiError::VmNotFound(name.to_string()))?;
        Self::attach(hv, vm.id)
    }

    /// The introspected VM's name.
    pub fn vm_name(&self) -> &str {
        &self.vm.name
    }

    /// The introspected VM's id.
    pub fn vm_id(&self) -> VmId {
        self.vm.id
    }

    /// Guest pointer width (from the profile).
    pub fn width(&self) -> AddressWidth {
        self.vm.width()
    }

    /// Resolves a kernel symbol from the VM's profile (libVMI's
    /// `vmi_translate_ksym2v`).
    pub fn symbol(&mut self, name: &str) -> Result<u64, VmiError> {
        self.charge(SimDuration::from_nanos(self.cost.symbol_lookup_ns));
        self.vm
            .symbols
            .get(name)
            .copied()
            .ok_or_else(|| VmiError::UnknownSymbol(name.to_string()))
    }

    /// Reads guest-virtual memory into `buf`, charging per-page map +
    /// per-byte copy costs (libVMI's `vmi_read_va`).
    ///
    /// Transient injected faults ([`HvError::is_transient`]) are retried up
    /// to the session's [`RetryPolicy`], each retry charging its
    /// exponential backoff to the ledger; persistent transience surfaces
    /// as [`VmiError::RetriesExhausted`]. Fatal faults
    /// ([`HvError::VmLost`]) and structural errors (unmapped VAs) are
    /// never retried.
    pub fn read_va(&mut self, va: u64, buf: &mut [u8]) -> Result<(), VmiError> {
        let mut attempt: u32 = 0;
        loop {
            self.check_deadline()?;
            match self.read_va_attempt(va, buf) {
                Ok(()) => return Ok(()),
                Err(VmiError::Hv(e)) if e.is_transient() => {
                    self.stats.transient_faults += 1;
                    if attempt >= self.retry.max_retries {
                        return Err(VmiError::RetriesExhausted {
                            va,
                            attempts: attempt + 1,
                            last: e,
                        });
                    }
                    // Backoff models a sleep, not contended CPU work: flat.
                    let wait = self.retry.jittered_backoff(attempt, &mut self.jitter_rng);
                    self.charge_flat(wait);
                    self.stats.retries += 1;
                    attempt += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// One read attempt: consults the fault layer, then performs and
    /// charges the read. Failed attempts charge one page-map worth of time
    /// (the failed hypercall) but never touch the page cache or the
    /// byte/page statistics, so the performance figures count only useful
    /// work.
    fn read_va_attempt(&mut self, va: u64, buf: &mut [u8]) -> Result<(), VmiError> {
        let decision = match &mut self.fault {
            Some(state) => state.on_read(va, buf.len()),
            None => FaultDecision::Proceed {
                torn_byte: None,
                extra_ns: 0,
            },
        };
        let torn_byte = match decision {
            FaultDecision::Fail { error, extra_ns } => {
                self.charge(self.cost.read_cost(1, 0));
                self.charge_flat(SimDuration::from_nanos(extra_ns));
                return Err(error.into());
            }
            FaultDecision::Proceed {
                torn_byte,
                extra_ns,
            } => {
                self.charge_flat(SimDuration::from_nanos(extra_ns));
                torn_byte
            }
        };
        if self.fast.is_some() {
            // Fast path: translate via the session cache (walks charged
            // per miss), map first-touch pages per contiguous physical
            // run, then pay per-byte copy only.
            let pages = Self::page_vas(va, buf.len() as u64);
            self.fast_plan_pages(&pages)?;
            self.stats.reads += 1;
            self.stats.bytes_copied += buf.len() as u64;
            self.charge(self.cost.read_cost(0, buf.len() as u64));
        } else {
            let pages = Vm::pages_crossed(va, buf.len() as u64);
            // With the cache enabled, only first-touch pages pay the map cost.
            let chargeable_pages = match &mut self.page_cache {
                None => pages,
                Some(cache) => {
                    let first = va >> PAGE_SHIFT;
                    (0..pages).filter(|i| cache.insert(first + i)).count() as u64
                }
            };
            self.stats.reads += 1;
            self.stats.pages_mapped += chargeable_pages;
            self.stats.bytes_copied += buf.len() as u64;
            self.stats.page_walks += chargeable_pages;
            self.charge(self.cost.read_cost(chargeable_pages, buf.len() as u64));
        }
        self.vm.read_virt(va, buf)?;
        if let Some(off) = torn_byte {
            // A concurrent guest write landed mid-copy: one byte of the
            // returned buffer is stale. Silent by design — only
            // `read_va_stable`'s double-read can notice.
            buf[off] ^= 0xFF;
        }
        Ok(())
    }

    /// Page-aligned VAs of every page a `len`-byte read at `va` crosses.
    fn page_vas(va: u64, len: u64) -> Vec<u64> {
        let pages = Vm::pages_crossed(va, len);
        let first = va & !((1u64 << PAGE_SHIFT) - 1);
        (0..pages).map(|i| first + (i << PAGE_SHIFT)).collect()
    }

    /// Fast-path planning for a sorted, deduplicated list of page-aligned
    /// VAs: resolves each through the translate cache (charging one
    /// page-table walk per miss), then charges one foreign map per
    /// contiguous physical run of not-yet-mapped pages. The `mapped` set
    /// is only updated once every translation has succeeded, so a hostile
    /// unmapped VA cannot leave charged-for state behind.
    fn fast_plan_pages(&mut self, page_vas: &[u64]) -> Result<(), VmiError> {
        let vm = self.vm;
        let (walks, hits, new_pages) = {
            let fast = self.fast.as_mut().expect("fast path enabled");
            let mut walks = 0u64;
            let mut hits = 0u64;
            let mut resolved = Vec::with_capacity(page_vas.len());
            for &pva in page_vas {
                match fast.translate.get(&pva).copied() {
                    Some(pa) => {
                        hits += 1;
                        resolved.push((pva, pa));
                    }
                    None => {
                        let pa = vm.translate(pva)?;
                        fast.translate.insert(pva, pa);
                        walks += 1;
                        resolved.push((pva, pa));
                    }
                }
            }
            let new_pages: Vec<(u64, u64)> = resolved
                .into_iter()
                .filter(|&(pva, _)| fast.mapped.insert(pva))
                .collect();
            (walks, hits, new_pages)
        };
        // Contiguous physical runs among the newly mapped pages: virtually
        // consecutive *and* physically adjacent pages share one
        // `xc_map_foreign_range`-style call.
        let page = 1u64 << PAGE_SHIFT;
        let mut runs = 0u64;
        let mut prev: Option<(u64, u64)> = None;
        for &(pva, pa) in &new_pages {
            let contiguous = prev.is_some_and(|(pva0, pa0)| pva == pva0 + page && pa == pa0 + page);
            if !contiguous {
                runs += 1;
            }
            prev = Some((pva, pa));
        }
        self.stats.page_walks += walks;
        self.stats.translate_cache_hits += hits;
        self.stats.pages_mapped += new_pages.len() as u64;
        self.charge(SimDuration::from_nanos(
            walks * self.cost.translate_ns + runs * self.cost.page_map_ns,
        ));
        Ok(())
    }

    /// Reads guest memory like [`VmiSession::read_va`], then verifies the
    /// snapshot is *stable* — two consecutive reads agree — before
    /// returning it. This is how a real introspector defends against torn
    /// pages (the guest dirtying memory between the copy's page visits).
    ///
    /// On a VM without a fault plan the verification read is skipped and
    /// nothing extra is charged: the simulator's read-only borrow proves
    /// guest memory cannot change under the scan, and skipping keeps the
    /// baseline Fig. 7/8 cost ledger identical to the fault-free build.
    ///
    /// If no two consecutive snapshots agree within the retry budget the
    /// read fails with [`VmiError::TornRead`]. Each detected tear bumps
    /// [`VmiStats::torn_detected`].
    pub fn read_va_stable(&mut self, va: u64, buf: &mut [u8]) -> Result<(), VmiError> {
        self.read_va(va, buf)?;
        if self.fault.is_none() {
            return Ok(());
        }
        let mut check = vec![0u8; buf.len()];
        for _ in 0..=self.retry.max_retries {
            let before = self.stats;
            self.read_va(va, &mut check)?;
            // The verification pass re-reads bytes already copied: reclassify
            // it under `stability_rereads` so `reads`/`pages_mapped`/
            // `bytes_copied` keep measuring useful work only. Simulated time
            // stays charged (the double-read really costs it), and
            // retries/transient_faults keep accruing (those are genuine).
            self.stats.stability_rereads += self.stats.reads - before.reads;
            self.stats.reads = before.reads;
            self.stats.pages_mapped = before.pages_mapped;
            self.stats.bytes_copied = before.bytes_copied;
            self.stats.page_walks = before.page_walks;
            self.stats.translate_cache_hits = before.translate_cache_hits;
            self.stats.vectored_reads = before.vectored_reads;
            if check == *buf {
                return Ok(());
            }
            self.stats.torn_detected += 1;
            buf.copy_from_slice(&check);
        }
        Err(VmiError::TornRead { va })
    }

    /// Scatter-gather read: fills every request in `requests`, planning
    /// the whole batch at once. All requested pages are resolved through
    /// the session translate cache (one page-table walk per distinct
    /// never-seen page), newly touched pages are foreign-mapped once per
    /// contiguous physical run, and the per-byte copy cost covers the
    /// total. This replaces dozens of `read_va`/`read_u32` round-trips
    /// with one plan — the capture fast path.
    ///
    /// Requires [`VmiSession::with_fast_capture`]; without it the call
    /// degrades to a sequential `read_va` loop so callers can stay
    /// path-agnostic. The fault layer is consulted once per attempt (the
    /// batch is one hypercall-sized operation, not dozens), and transient
    /// faults retry the whole batch under the session [`RetryPolicy`].
    pub fn read_va_vectored(&mut self, requests: &mut [VectoredRead<'_>]) -> Result<(), VmiError> {
        if requests.is_empty() {
            return Ok(());
        }
        if self.fast.is_none() {
            for r in requests.iter_mut() {
                self.read_va(r.va, r.buf)?;
            }
            return Ok(());
        }
        let first_va = requests.iter().map(|r| r.va).min().unwrap_or(0);
        let mut attempt: u32 = 0;
        loop {
            self.check_deadline()?;
            match self.read_va_vectored_attempt(requests) {
                Ok(()) => return Ok(()),
                Err(VmiError::Hv(e)) if e.is_transient() => {
                    self.stats.transient_faults += 1;
                    if attempt >= self.retry.max_retries {
                        return Err(VmiError::RetriesExhausted {
                            va: first_va,
                            attempts: attempt + 1,
                            last: e,
                        });
                    }
                    let wait = self.retry.jittered_backoff(attempt, &mut self.jitter_rng);
                    self.charge_flat(wait);
                    self.stats.retries += 1;
                    attempt += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// One scatter-gather attempt: one fault-layer consultation for the
    /// whole batch, then plan + copy. A torn-byte injection lands in the
    /// request whose buffer covers the torn offset of the concatenated
    /// batch, mirroring the single-read behavior.
    fn read_va_vectored_attempt(
        &mut self,
        requests: &mut [VectoredRead<'_>],
    ) -> Result<(), VmiError> {
        let total: usize = requests.iter().map(|r| r.buf.len()).sum();
        let first_va = requests.iter().map(|r| r.va).min().unwrap_or(0);
        let decision = match &mut self.fault {
            Some(state) => state.on_read(first_va, total),
            None => FaultDecision::Proceed {
                torn_byte: None,
                extra_ns: 0,
            },
        };
        let torn_byte = match decision {
            FaultDecision::Fail { error, extra_ns } => {
                self.charge(self.cost.read_cost(1, 0));
                self.charge_flat(SimDuration::from_nanos(extra_ns));
                return Err(error.into());
            }
            FaultDecision::Proceed {
                torn_byte,
                extra_ns,
            } => {
                self.charge_flat(SimDuration::from_nanos(extra_ns));
                torn_byte
            }
        };
        let mut pages = Vec::new();
        for r in requests.iter() {
            pages.extend(Self::page_vas(r.va, r.buf.len() as u64));
        }
        pages.sort_unstable();
        pages.dedup();
        self.fast_plan_pages(&pages)?;
        self.stats.reads += requests.len() as u64;
        self.stats.vectored_reads += 1;
        self.stats.bytes_copied += total as u64;
        self.charge(self.cost.read_cost(0, total as u64));
        for r in requests.iter_mut() {
            self.vm.read_virt(r.va, r.buf)?;
        }
        if let Some(mut off) = torn_byte {
            for r in requests.iter_mut() {
                if off < r.buf.len() {
                    r.buf[off] ^= 0xFF;
                    break;
                }
                off -= r.buf.len();
            }
        }
        Ok(())
    }

    /// Scatter-gather equivalent of [`VmiSession::read_va_stable`]: reads
    /// the batch, then (only on VMs carrying a fault plan) re-reads and
    /// compares until two consecutive snapshots of every request agree.
    /// Verification passes are reclassified under
    /// [`VmiStats::stability_rereads`] exactly like the scalar variant,
    /// so the useful-work counters stay honest.
    pub fn read_va_vectored_stable(
        &mut self,
        requests: &mut [VectoredRead<'_>],
    ) -> Result<(), VmiError> {
        self.read_va_vectored(requests)?;
        if self.fault.is_none() || requests.is_empty() {
            return Ok(());
        }
        let mut check: Vec<Vec<u8>> = requests.iter().map(|r| vec![0u8; r.buf.len()]).collect();
        let mut torn_va = requests.first().map_or(0, |r| r.va);
        for _ in 0..=self.retry.max_retries {
            let before = self.stats;
            {
                let mut verify: Vec<VectoredRead<'_>> = requests
                    .iter()
                    .zip(check.iter_mut())
                    .map(|(r, c)| VectoredRead {
                        va: r.va,
                        buf: c.as_mut_slice(),
                    })
                    .collect();
                self.read_va_vectored(&mut verify)?;
            }
            self.stats.stability_rereads += self.stats.reads - before.reads;
            self.stats.reads = before.reads;
            self.stats.pages_mapped = before.pages_mapped;
            self.stats.bytes_copied = before.bytes_copied;
            self.stats.page_walks = before.page_walks;
            self.stats.translate_cache_hits = before.translate_cache_hits;
            self.stats.vectored_reads = before.vectored_reads;
            let mismatch = requests
                .iter()
                .zip(check.iter())
                .position(|(r, c)| r.buf != c.as_slice());
            match mismatch {
                None => return Ok(()),
                Some(i) => {
                    self.stats.torn_detected += 1;
                    torn_va = requests[i].va;
                    for (r, c) in requests.iter_mut().zip(check.iter()) {
                        r.buf.copy_from_slice(c);
                    }
                }
            }
        }
        Err(VmiError::TornRead { va: torn_va })
    }

    /// Reads a guest pointer (4/8 bytes by width).
    pub fn read_ptr(&mut self, va: u64) -> Result<u64, VmiError> {
        match self.width() {
            AddressWidth::W32 => {
                let mut b = [0u8; 4];
                self.read_va(va, &mut b)?;
                Ok(u32::from_le_bytes(b) as u64)
            }
            AddressWidth::W64 => {
                let mut b = [0u8; 8];
                self.read_va(va, &mut b)?;
                Ok(u64::from_le_bytes(b))
            }
        }
    }

    /// Reads a `u16`.
    pub fn read_u16(&mut self, va: u64) -> Result<u16, VmiError> {
        let mut b = [0u8; 2];
        self.read_va(va, &mut b)?;
        Ok(u16::from_le_bytes(b))
    }

    /// Reads a `u32`.
    pub fn read_u32(&mut self, va: u64) -> Result<u32, VmiError> {
        let mut b = [0u8; 4];
        self.read_va(va, &mut b)?;
        Ok(u32::from_le_bytes(b))
    }

    /// Sweeps `[lo, hi)` for memory-resident PE images: every page-aligned
    /// candidate whose first bytes form a coherent `MZ` → `e_lfanew` →
    /// `PE\0\0` chain is reported with its advertised `SizeOfImage`.
    ///
    /// This is the *physical* half of a cross-view scan: the loaded-module
    /// list says what the guest claims is mapped, the header sweep says
    /// what actually is. A module unlinked from the list (DKOM) or a list
    /// entry whose `DllBase` was redirected at a decoy (checker blinding)
    /// leaves an image here that no list entry accounts for.
    ///
    /// Unmapped or unreadable candidates are skipped, not errors — pool
    /// and module regions are sparse by construction. Bounds are clamped
    /// to page alignment; a `SizeOfImage` outside `[1 page, 512 MiB)` is
    /// rejected as header garbage.
    pub fn sweep_image_headers(&mut self, lo: u64, hi: u64) -> Vec<ImageHit> {
        const DOS_MAGIC: [u8; 2] = *b"MZ";
        const PE_MAGIC: [u8; 4] = *b"PE\0\0";
        const E_LFANEW: u64 = 0x3C;
        // SizeOfImage lives at OptionalHeader+0x38; the OptionalHeader
        // starts 0x18 past the PE signature for PE32 and PE32+ alike.
        const SIZE_OF_IMAGE: u64 = 0x18 + 0x38;
        let page = 1u64 << PAGE_SHIFT;
        let mut out = Vec::new();
        let mut candidate = lo & !(page - 1);
        let end = hi & !(page - 1);
        while candidate < end {
            let base = candidate;
            candidate += page;
            let mut magic = [0u8; 2];
            if self.read_va(base, &mut magic).is_err() || magic != DOS_MAGIC {
                continue;
            }
            let Ok(e_lfanew) = self.read_u32(base + E_LFANEW) else {
                continue;
            };
            // The PE header of a loadable image sits inside the first page.
            if u64::from(e_lfanew) < 0x40 || u64::from(e_lfanew) >= page {
                continue;
            }
            let mut sig = [0u8; 4];
            if self.read_va(base + u64::from(e_lfanew), &mut sig).is_err() || sig != PE_MAGIC {
                continue;
            }
            let Ok(size) = self.read_u32(base + u64::from(e_lfanew) + SIZE_OF_IMAGE) else {
                continue;
            };
            let size = u64::from(size);
            if size < page || size >= 512 * 1024 * 1024 {
                continue;
            }
            out.push(ImageHit {
                base,
                size_of_image: size,
            });
        }
        out
    }

    /// The write-generation of the page backing `va`: the frame it resolves
    /// to plus the stamp of the last guest write that touched that frame.
    ///
    /// This is a hypervisor *metadata* query — no guest bytes are mapped or
    /// copied — so it charges only the page-table translation
    /// ([`mc_hypervisor::CostModel::translate_ns`]), an order of magnitude
    /// cheaper than a mapped read. That gap is what makes incremental
    /// rescanning pay: a monitor can prove a page unchanged for ~2 µs
    /// instead of re-capturing it for ~30 µs + copy. The fault layer does
    /// not apply (nothing guest-controlled is dereferenced); the session
    /// deadline does.
    pub fn page_generation(&mut self, va: u64) -> Result<mc_hypervisor::PageGeneration, VmiError> {
        self.check_deadline()?;
        if self.fast.is_some() {
            // Fast sessions answer repeat probes from the translate cache
            // (free), and a probe that misses warms the cache for the
            // capture that usually follows it.
            let pva = va & !((1u64 << PAGE_SHIFT) - 1);
            let vm = self.vm;
            let (pa, hit) = {
                let fast = self.fast.as_mut().expect("fast path enabled");
                match fast.translate.get(&pva).copied() {
                    Some(pa) => (pa, true),
                    None => {
                        let pa = vm.translate(pva)?;
                        fast.translate.insert(pva, pa);
                        (pa, false)
                    }
                }
            };
            if hit {
                self.stats.translate_cache_hits += 1;
            } else {
                self.stats.page_walks += 1;
                self.charge(SimDuration::from_nanos(self.cost.translate_ns));
            }
            return Ok(vm.mem.page_generation(pa)?);
        }
        self.stats.page_walks += 1;
        self.charge(SimDuration::from_nanos(self.cost.translate_ns));
        Ok(self.vm.page_generation(va)?)
    }

    /// Write-generations for every page a `len`-byte range at `va` crosses,
    /// in address order. Cost: one translation per page.
    pub fn range_generations(
        &mut self,
        va: u64,
        len: u64,
    ) -> Result<Vec<mc_hypervisor::PageGeneration>, VmiError> {
        let pages = Vm::pages_crossed(va, len);
        let first_page_va = va & !((1u64 << PAGE_SHIFT) - 1);
        let mut out = Vec::with_capacity(pages as usize);
        for i in 0..pages {
            out.push(self.page_generation(first_page_va + (i << PAGE_SHIFT))?);
        }
        Ok(out)
    }

    /// Plans write-protection watches over a `len`-byte range at `va`
    /// (typically a captured module's page span): translates every page —
    /// riding the fast-capture translate cache when armed, so a watch over
    /// a just-captured module costs no extra page walks — and returns a
    /// [`mc_hypervisor::WatchPlan`] naming the backing frames.
    ///
    /// The session borrows the VM immutably, so it can only *plan*; the
    /// caller arms the plan with
    /// [`mc_hypervisor::Hypervisor::apply_watch_plan`] (which takes `&mut`,
    /// like every other guest-state mutation). Cost: one
    /// [`mc_hypervisor::CostModel::translate_ns`] per translate-cache miss.
    /// The fault layer does not apply — like
    /// [`VmiSession::page_generation`], nothing guest-controlled is
    /// dereferenced; the session deadline does.
    pub fn arm_watches(&mut self, va: u64, len: u64) -> Result<mc_hypervisor::WatchPlan, VmiError> {
        let pages = Vm::pages_crossed(va, len);
        let first_page_va = va & !((1u64 << PAGE_SHIFT) - 1);
        let mut frames = Vec::with_capacity(pages as usize);
        for i in 0..pages {
            self.check_deadline()?;
            let pva = first_page_va + (i << PAGE_SHIFT);
            let pa = if self.fast.is_some() {
                let vm = self.vm;
                let fast = self.fast.as_mut().expect("fast path enabled");
                match fast.translate.get(&pva).copied() {
                    Some(pa) => {
                        self.stats.translate_cache_hits += 1;
                        pa
                    }
                    None => {
                        let pa = vm.translate(pva)?;
                        fast.translate.insert(pva, pa);
                        self.stats.page_walks += 1;
                        self.charge(SimDuration::from_nanos(self.cost.translate_ns));
                        pa
                    }
                }
            } else {
                self.stats.page_walks += 1;
                self.charge(SimDuration::from_nanos(self.cost.translate_ns));
                self.vm.translate(pva)?
            };
            frames.push(pa >> PAGE_SHIFT);
        }
        Ok(mc_hypervisor::WatchPlan {
            vm: self.vm.id,
            va,
            len,
            frames,
        })
    }

    /// Charges non-introspection processing time (parser/hasher/differ) to
    /// this session's ledger, scaled by host contention.
    pub fn charge_process(&mut self, per_byte_ns: f64, bytes: u64) {
        self.charge(self.cost.process_cost(per_byte_ns, bytes));
    }

    /// The session's cost model (so callers use consistent constants).
    pub fn cost_model(&self) -> &mc_hypervisor::CostModel {
        &self.cost
    }

    /// Simulated time consumed so far.
    pub fn elapsed(&self) -> SimDuration {
        self.elapsed
    }

    /// Returns and resets the ledger (used to split time per component).
    pub fn take_elapsed(&mut self) -> SimDuration {
        std::mem::take(&mut self.elapsed)
    }

    /// Access statistics.
    pub fn stats(&self) -> VmiStats {
        self.stats
    }

    /// Anomalies the fault layer injected into this session (zero when the
    /// VM carries no fault plan). See [`FaultState::injections`].
    pub fn fault_injections(&self) -> u64 {
        self.fault.as_ref().map_or(0, FaultState::injections)
    }

    /// Total simulated time charged over the session's whole lifetime
    /// (never reset by [`VmiSession::take_elapsed`]).
    pub fn consumed(&self) -> SimDuration {
        self.consumed
    }

    /// The session's retry policy.
    pub fn retry_policy(&self) -> RetryPolicy {
        self.retry
    }

    fn check_deadline(&self) -> Result<(), VmiError> {
        match self.deadline {
            Some(deadline) if self.consumed > deadline => Err(VmiError::DeadlineExceeded {
                elapsed: self.consumed,
                deadline,
            }),
            _ => Ok(()),
        }
    }

    fn charge(&mut self, base: SimDuration) {
        let scaled = base.scaled(self.slowdown);
        self.elapsed += scaled;
        self.consumed += scaled;
    }

    /// Charges simulated time unscaled by host contention (sleeps and
    /// scheduler-induced delays happen in wall time regardless of load).
    fn charge_flat(&mut self, d: SimDuration) {
        self.elapsed += d;
        self.consumed += d;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_hypervisor::PAGE_SIZE;

    fn host_with_vm() -> (Hypervisor, VmId) {
        let mut hv = Hypervisor::new();
        let id = hv.create_vm("dom1", AddressWidth::W32).unwrap();
        let vm = hv.vm_mut(id).unwrap();
        vm.map_range(0x8000_0000, 4 * PAGE_SIZE as u64).unwrap();
        vm.write_virt(0x8000_0000, b"introspect me").unwrap();
        vm.write_ptr(0x8000_0100, 0xF7AB_0000).unwrap();
        vm.symbols.insert("PsLoadedModuleList".into(), 0x8000_0100);
        (hv, id)
    }

    #[test]
    fn read_va_returns_guest_bytes() {
        let (hv, id) = host_with_vm();
        let mut s = VmiSession::attach(&hv, id).unwrap();
        let mut buf = [0u8; 13];
        s.read_va(0x8000_0000, &mut buf).unwrap();
        assert_eq!(&buf, b"introspect me");
        assert_eq!(s.stats().reads, 1);
        assert_eq!(s.stats().bytes_copied, 13);
        assert_eq!(s.stats().pages_mapped, 1);
    }

    #[test]
    fn symbol_resolution_and_ptr_read() {
        let (hv, id) = host_with_vm();
        let mut s = VmiSession::attach(&hv, id).unwrap();
        let head = s.symbol("PsLoadedModuleList").unwrap();
        assert_eq!(s.read_ptr(head).unwrap(), 0xF7AB_0000);
        assert!(matches!(
            s.symbol("NoSuchSymbol"),
            Err(VmiError::UnknownSymbol(_))
        ));
    }

    #[test]
    fn costs_accrue_per_page() {
        let (hv, id) = host_with_vm();
        let mut s = VmiSession::attach(&hv, id).unwrap();
        let after_attach = s.elapsed();
        assert!(after_attach > SimDuration::ZERO, "attach itself is charged");

        let mut small = [0u8; 16];
        s.read_va(0x8000_0000, &mut small).unwrap();
        let one_page_read = s.elapsed() - after_attach;

        let mut big = vec![0u8; 3 * PAGE_SIZE];
        let before = s.elapsed();
        s.read_va(0x8000_0000, &mut big).unwrap();
        let three_page_read = s.elapsed() - before;
        assert!(three_page_read.as_nanos() > 2 * one_page_read.as_nanos());
        assert_eq!(s.stats().pages_mapped, 1 + 3);
    }

    #[test]
    fn contention_scales_charges() {
        let (mut hv, id) = host_with_vm();
        let idle_cost = {
            let mut s = VmiSession::attach(&hv, id).unwrap();
            let mut buf = vec![0u8; 2 * PAGE_SIZE];
            s.read_va(0x8000_0000, &mut buf).unwrap();
            s.elapsed()
        };
        // Load the host far past its cores.
        for i in 0..20 {
            let v = hv.create_vm(&format!("ld{i}"), AddressWidth::W32).unwrap();
            hv.vm_mut(v).unwrap().cpu_demand = 1.0;
        }
        let loaded_cost = {
            let mut s = VmiSession::attach(&hv, id).unwrap();
            let mut buf = vec![0u8; 2 * PAGE_SIZE];
            s.read_va(0x8000_0000, &mut buf).unwrap();
            s.elapsed()
        };
        assert!(
            loaded_cost.as_nanos() > 2 * idle_cost.as_nanos(),
            "loaded {loaded_cost} vs idle {idle_cost}"
        );
    }

    #[test]
    fn take_elapsed_splits_ledger() {
        let (hv, id) = host_with_vm();
        let mut s = VmiSession::attach(&hv, id).unwrap();
        let phase1 = s.take_elapsed();
        assert!(phase1 > SimDuration::ZERO);
        assert_eq!(s.elapsed(), SimDuration::ZERO);
        s.charge_process(2.0, 1000);
        // 2000 ns scaled by the near-idle slowdown (~1.04).
        let ns = s.elapsed().as_nanos();
        assert!((2000..=2400).contains(&ns), "unexpected charge {ns}");
    }

    #[test]
    fn read_of_unmapped_guest_memory_is_typed_error() {
        let (hv, id) = host_with_vm();
        let mut s = VmiSession::attach(&hv, id).unwrap();
        let mut buf = [0u8; 4];
        assert!(matches!(
            s.read_va(0xDEAD_0000, &mut buf),
            Err(VmiError::Hv(HvError::UnmappedVa(_)))
        ));
    }

    #[test]
    fn page_cache_charges_first_touch_only() {
        let (hv, id) = host_with_vm();
        // Uncached: two reads of the same page charge two maps.
        let mut s = VmiSession::attach(&hv, id).unwrap();
        s.take_elapsed();
        let mut buf = [0u8; 64];
        s.read_va(0x8000_0000, &mut buf).unwrap();
        s.read_va(0x8000_0000, &mut buf).unwrap();
        let uncached = s.take_elapsed();
        assert_eq!(s.stats().pages_mapped, 2);

        // Cached: the second read only pays the copy cost.
        let mut s = VmiSession::attach(&hv, id).unwrap().with_page_cache();
        s.take_elapsed();
        s.read_va(0x8000_0000, &mut buf).unwrap();
        s.read_va(0x8000_0000, &mut buf).unwrap();
        let cached = s.take_elapsed();
        assert_eq!(s.stats().pages_mapped, 1);
        assert!(cached < uncached, "cached {cached} vs uncached {uncached}");

        // A different page still pays.
        s.read_va(0x8000_0000 + PAGE_SIZE as u64, &mut buf).unwrap();
        assert_eq!(s.stats().pages_mapped, 2);
    }

    #[test]
    fn page_cache_handles_multi_page_reads() {
        let (hv, id) = host_with_vm();
        let mut s = VmiSession::attach(&hv, id).unwrap().with_page_cache();
        let mut big = vec![0u8; 3 * PAGE_SIZE];
        s.read_va(0x8000_0000, &mut big).unwrap();
        assert_eq!(s.stats().pages_mapped, 3);
        // Overlapping re-read: only the fourth page is new.
        let mut big = vec![0u8; 4 * PAGE_SIZE];
        s.read_va(0x8000_0000, &mut big).unwrap();
        assert_eq!(s.stats().pages_mapped, 4);
    }

    #[test]
    fn attach_by_name() {
        let (hv, _id) = host_with_vm();
        assert!(VmiSession::attach_by_name(&hv, "dom1").is_ok());
        assert!(matches!(
            VmiSession::attach_by_name(&hv, "nope"),
            Err(VmiError::VmNotFound(_))
        ));
    }

    use mc_hypervisor::FaultPlan;

    fn faulty_host(plan: FaultPlan) -> (Hypervisor, VmId) {
        let (mut hv, id) = host_with_vm();
        hv.set_fault_plan(id, Some(plan)).unwrap();
        (hv, id)
    }

    #[test]
    fn transient_faults_are_retried_transparently() {
        let (hv, id) = faulty_host(FaultPlan::transient(21, 0.3));
        let mut s = VmiSession::attach(&hv, id).unwrap();
        let mut buf = [0u8; 13];
        for _ in 0..50 {
            s.read_va(0x8000_0000, &mut buf).unwrap();
            assert_eq!(&buf, b"introspect me");
        }
        let st = s.stats();
        assert!(st.transient_faults > 0, "plan injected nothing");
        assert_eq!(st.retries, st.transient_faults, "every fault was retried");
        assert_eq!(st.reads, 50, "failed attempts don't count as reads");
    }

    #[test]
    fn retry_backoff_is_charged_to_the_ledger() {
        let (hv, id) = faulty_host(FaultPlan::transient(21, 0.3));
        let mut faulty = VmiSession::attach(&hv, id).unwrap();
        let mut clean = VmiSession::attach(&hv, id).unwrap();
        clean.fault = None; // same host/slowdown, no faults
        let mut buf = [0u8; 64];
        for _ in 0..50 {
            faulty.read_va(0x8000_0000, &mut buf).unwrap();
            clean.read_va(0x8000_0000, &mut buf).unwrap();
        }
        assert!(
            faulty.elapsed() > clean.elapsed(),
            "retries cost time: faulty {} vs clean {}",
            faulty.elapsed(),
            clean.elapsed()
        );
    }

    #[test]
    fn persistent_transience_exhausts_retries() {
        let (hv, id) = faulty_host(FaultPlan::transient(3, 1.0));
        let mut s = VmiSession::attach(&hv, id).unwrap();
        let mut buf = [0u8; 8];
        match s.read_va(0x8000_0000, &mut buf) {
            Err(VmiError::RetriesExhausted { attempts, last, .. }) => {
                assert_eq!(attempts, RetryPolicy::default().max_retries + 1);
                assert!(last.is_transient());
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(s.stats().retries == u64::from(RetryPolicy::default().max_retries));
    }

    #[test]
    fn fail_fast_policy_does_not_retry() {
        let (hv, id) = faulty_host(FaultPlan::transient(3, 1.0));
        let mut s = VmiSession::attach(&hv, id)
            .unwrap()
            .with_retry(RetryPolicy::NONE);
        let mut buf = [0u8; 8];
        assert!(matches!(
            s.read_va(0x8000_0000, &mut buf),
            Err(VmiError::RetriesExhausted { attempts: 1, .. })
        ));
        assert_eq!(s.stats().retries, 0);
    }

    #[test]
    fn vm_loss_is_fatal_not_retried() {
        let (hv, id) = faulty_host(FaultPlan::none(1).lose_after(2));
        let mut s = VmiSession::attach(&hv, id).unwrap();
        let mut buf = [0u8; 8];
        s.read_va(0x8000_0000, &mut buf).unwrap();
        s.read_va(0x8000_0000, &mut buf).unwrap();
        let err = s.read_va(0x8000_0000, &mut buf).unwrap_err();
        assert!(matches!(err, VmiError::Hv(HvError::VmLost(_))));
        assert!(err.is_fatal_to_vm());
        assert_eq!(s.stats().retries, 0, "loss must not burn the retry budget");
    }

    #[test]
    fn vm_lost_before_first_read_fails_attach() {
        let (hv, id) = faulty_host(FaultPlan::none(1).lose_after(0));
        assert!(matches!(
            VmiSession::attach(&hv, id),
            Err(VmiError::Hv(HvError::VmLost(_)))
        ));
    }

    #[test]
    fn paused_vm_rides_out_within_retry_budget() {
        // Pause window (3 attempts) < default retry budget (4), so the
        // read after the pause trigger succeeds transparently.
        let (hv, id) = faulty_host(FaultPlan::none(1).pause_after(1, 3));
        let mut s = VmiSession::attach(&hv, id).unwrap();
        let mut buf = [0u8; 13];
        s.read_va(0x8000_0000, &mut buf).unwrap();
        s.read_va(0x8000_0000, &mut buf).unwrap();
        assert_eq!(&buf, b"introspect me");
        assert_eq!(s.stats().retries, 3);
    }

    #[test]
    fn deadline_bounds_the_session() {
        let (hv, id) = host_with_vm();
        let mut s = VmiSession::attach(&hv, id)
            .unwrap()
            .with_deadline(s_attach_cost(&hv));
        let mut buf = [0u8; 8];
        s.read_va(0x8000_0000, &mut buf).unwrap(); // pushes past the budget
        assert!(matches!(
            s.read_va(0x8000_0000, &mut buf),
            Err(VmiError::DeadlineExceeded { .. })
        ));
    }

    /// Roughly the attach cost on an otherwise idle host.
    fn s_attach_cost(hv: &Hypervisor) -> SimDuration {
        SimDuration::from_nanos(hv.cost.vmi_attach_ns).scaled(hv.dom0_slowdown() + 0.01)
    }

    #[test]
    fn deadline_survives_ledger_splits() {
        let (hv, id) = host_with_vm();
        let mut s = VmiSession::attach(&hv, id)
            .unwrap()
            .with_deadline(s_attach_cost(&hv));
        let mut buf = [0u8; 8];
        s.read_va(0x8000_0000, &mut buf).unwrap();
        s.take_elapsed(); // resets `elapsed`, must not reset the budget
        assert!(matches!(
            s.read_va(0x8000_0000, &mut buf),
            Err(VmiError::DeadlineExceeded { .. })
        ));
        assert!(s.consumed() > SimDuration::ZERO);
    }

    #[test]
    fn stable_read_recovers_the_true_bytes_under_torn_pages() {
        let (mut hv, id) = host_with_vm();
        let truth: Vec<u8> = (0..4096u32).map(|i| (i % 251) as u8).collect();
        hv.vm_mut(id)
            .unwrap()
            .write_virt(0x8000_1000, &truth)
            .unwrap();
        hv.set_fault_plan(id, Some(FaultPlan::none(5).with_torn_rate(0.4)))
            .unwrap();
        let mut s = VmiSession::attach(&hv, id)
            .unwrap()
            .with_retry(RetryPolicy::with_max_retries(16));
        let mut tears = 0;
        for _ in 0..30 {
            let mut buf = vec![0u8; 4096];
            s.read_va_stable(0x8000_1000, &mut buf).unwrap();
            assert_eq!(buf, truth, "stable read returned torn bytes");
            tears = s.stats().torn_detected;
        }
        assert!(
            tears > 0,
            "seed 5 @ 40% should tear at least once in 30 reads"
        );
    }

    #[test]
    fn hopelessly_torn_page_is_a_typed_error() {
        let (hv, id) = faulty_host(FaultPlan::none(7).with_torn_rate(1.0));
        let mut s = VmiSession::attach(&hv, id).unwrap();
        let mut buf = vec![0u8; 4096];
        // Every read corrupts a random byte; two snapshots agreeing would
        // need the same offset twice in a row — seed 7 never does.
        assert!(matches!(
            s.read_va_stable(0x8000_0000, &mut buf),
            Err(VmiError::TornRead { .. })
        ));
        assert!(s.stats().torn_detected > 0);
    }

    #[test]
    fn small_reads_are_never_torn() {
        let (hv, id) = faulty_host(FaultPlan::none(7).with_torn_rate(1.0));
        let mut s = VmiSession::attach(&hv, id).unwrap();
        let mut buf = [0u8; 13];
        s.read_va_stable(0x8000_0000, &mut buf).unwrap();
        assert_eq!(&buf, b"introspect me");
    }

    #[test]
    fn stable_read_is_free_without_a_fault_plan() {
        let (hv, id) = host_with_vm();
        let mut plain = VmiSession::attach(&hv, id).unwrap();
        let mut stable = VmiSession::attach(&hv, id).unwrap();
        let mut a = vec![0u8; 4096];
        let mut b = vec![0u8; 4096];
        plain.read_va(0x8000_0000, &mut a).unwrap();
        stable.read_va_stable(0x8000_0000, &mut b).unwrap();
        assert_eq!(a, b);
        assert_eq!(
            plain.elapsed(),
            stable.elapsed(),
            "verification read must not distort the baseline figures"
        );
        assert_eq!(plain.stats(), stable.stats());
    }

    #[test]
    fn stability_rereads_do_not_inflate_the_useful_work_counters() {
        // Clean stable read under a (no-op) fault plan: the verification
        // pass runs once and must land in `stability_rereads`, leaving the
        // useful-work counters identical to a plain read.
        let (mut hv, id) = host_with_vm();
        hv.set_fault_plan(id, Some(FaultPlan::none(1))).unwrap();
        let mut s = VmiSession::attach(&hv, id).unwrap();
        let mut buf = vec![0u8; 4096];
        s.read_va_stable(0x8000_0000, &mut buf).unwrap();
        assert_eq!(
            s.stats(),
            VmiStats {
                reads: 1,
                pages_mapped: 1,
                bytes_copied: 4096,
                page_walks: 1,
                translate_cache_hits: 0,
                vectored_reads: 0,
                retries: 0,
                transient_faults: 0,
                torn_detected: 0,
                stability_rereads: 1,
            }
        );

        // Torn-then-retried reads: every successful stable read costs one
        // verification pass plus one more per detected tear, and none of
        // them may leak into reads/pages_mapped/bytes_copied.
        let (mut hv, id) = host_with_vm();
        let truth: Vec<u8> = (0..4096u32).map(|i| (i % 251) as u8).collect();
        hv.vm_mut(id)
            .unwrap()
            .write_virt(0x8000_1000, &truth)
            .unwrap();
        hv.set_fault_plan(id, Some(FaultPlan::none(5).with_torn_rate(0.4)))
            .unwrap();
        let mut s = VmiSession::attach(&hv, id)
            .unwrap()
            .with_retry(RetryPolicy::with_max_retries(16));
        for _ in 0..30 {
            let mut buf = vec![0u8; 4096];
            s.read_va_stable(0x8000_1000, &mut buf).unwrap();
        }
        let st = s.stats();
        assert!(st.torn_detected > 0, "seed 5 @ 40% must tear in 30 reads");
        assert_eq!(st.reads, 30);
        assert_eq!(st.pages_mapped, 30);
        assert_eq!(st.bytes_copied, 30 * 4096);
        assert_eq!(st.stability_rereads, 30 + st.torn_detected);
        // One torn buffer can mismatch two consecutive comparisons, so
        // torn_detected may exceed injections; both must be non-zero here.
        assert!(s.fault_injections() > 0);
    }

    #[test]
    fn page_generation_moves_only_when_the_guest_writes() {
        let (mut hv, id) = host_with_vm();
        let g0 = {
            let mut s = VmiSession::attach(&hv, id).unwrap();
            s.range_generations(0x8000_0000, 2 * PAGE_SIZE as u64)
                .unwrap()
        };
        assert_eq!(g0.len(), 2);
        // Re-read without any guest write: identical stamps.
        let g1 = {
            let mut s = VmiSession::attach(&hv, id).unwrap();
            s.range_generations(0x8000_0000, 2 * PAGE_SIZE as u64)
                .unwrap()
        };
        assert_eq!(g0, g1);
        // Dirty the second page only.
        hv.vm_mut(id)
            .unwrap()
            .write_virt(0x8000_0000 + PAGE_SIZE as u64, b"dirty")
            .unwrap();
        let g2 = {
            let mut s = VmiSession::attach(&hv, id).unwrap();
            s.range_generations(0x8000_0000, 2 * PAGE_SIZE as u64)
                .unwrap()
        };
        assert_eq!(g2[0], g0[0], "untouched page keeps its generation");
        assert_ne!(g2[1], g0[1], "dirtied page moved");
    }

    #[test]
    fn generation_reads_are_much_cheaper_than_mapped_reads() {
        let (hv, id) = host_with_vm();
        let mut s = VmiSession::attach(&hv, id).unwrap();
        s.take_elapsed();
        s.range_generations(0x8000_0000, 4 * PAGE_SIZE as u64)
            .unwrap();
        let gen_cost = s.take_elapsed();
        let mut buf = vec![0u8; 4 * PAGE_SIZE];
        s.read_va(0x8000_0000, &mut buf).unwrap();
        let read_cost = s.take_elapsed();
        assert!(
            gen_cost.as_nanos() * 10 < read_cost.as_nanos(),
            "generation probe {gen_cost} should be ≫ cheaper than read {read_cost}"
        );
    }

    #[test]
    fn generation_reads_respect_the_deadline() {
        let (hv, id) = host_with_vm();
        let mut s = VmiSession::attach(&hv, id)
            .unwrap()
            .with_deadline(s_attach_cost(&hv));
        let mut buf = [0u8; 8];
        s.read_va(0x8000_0000, &mut buf).unwrap(); // burn the budget
        assert!(matches!(
            s.page_generation(0x8000_0000),
            Err(VmiError::DeadlineExceeded { .. })
        ));
    }

    #[test]
    fn backoff_schedule_is_exponential() {
        let p = RetryPolicy::default();
        assert_eq!(p.backoff(0), SimDuration::from_micros(50));
        assert_eq!(p.backoff(1), SimDuration::from_micros(100));
        assert_eq!(p.backoff(3), SimDuration::from_micros(400));
        assert_eq!(RetryPolicy::NONE.backoff(0), SimDuration::ZERO);
    }

    #[test]
    fn jittered_backoff_is_bounded_seeded_and_off_by_default() {
        use rand::{rngs::StdRng, SeedableRng};
        let p = RetryPolicy::default().with_jitter(0.4);
        // Same seed, same schedule — twice over.
        let schedule = |seed: u64| -> Vec<SimDuration> {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..4).map(|k| p.jittered_backoff(k, &mut rng)).collect()
        };
        assert_eq!(schedule(7), schedule(7), "deterministic per stream");
        assert_ne!(schedule(7), schedule(8), "distinct across streams");
        // Every wait stays inside the ±jitter/2 band around the pure
        // exponential value.
        let mut rng = StdRng::seed_from_u64(9);
        for k in 0..6 {
            let pure = p.backoff(k).as_nanos() as f64;
            let jittered = p.jittered_backoff(k, &mut rng).as_nanos() as f64;
            assert!(
                (jittered - pure).abs() <= pure * 0.2 + 1.0,
                "attempt {k}: {jittered} vs {pure}"
            );
        }
        // jitter == 0 takes no draw: the stream is untouched and the
        // schedule is exactly the unjittered one.
        let plain = RetryPolicy::default();
        let mut a = StdRng::seed_from_u64(3);
        let mut b = StdRng::seed_from_u64(3);
        for k in 0..4 {
            assert_eq!(plain.jittered_backoff(k, &mut a), plain.backoff(k));
        }
        use rand::RngCore;
        assert_eq!(a.next_u64(), b.next_u64(), "no hidden draws at jitter 0");
    }

    #[test]
    fn fast_scalar_reads_walk_each_page_once() {
        let (hv, id) = host_with_vm();
        // Legacy: every header-field-sized read pays a full walk + map.
        let mut legacy = VmiSession::attach(&hv, id).unwrap();
        let mut b = [0u8; 4];
        for i in 0..8 {
            legacy.read_va(0x8000_0000 + i * 4, &mut b).unwrap();
        }
        assert_eq!(legacy.stats().page_walks, 8);
        assert_eq!(legacy.stats().translate_cache_hits, 0);

        // Fast: one walk for the page, every later field is a cache hit.
        let mut fast = VmiSession::attach(&hv, id).unwrap().with_fast_capture();
        for i in 0..8 {
            fast.read_va(0x8000_0000 + i * 4, &mut b).unwrap();
        }
        let st = fast.stats();
        assert_eq!(st.page_walks, 1, "one walk for one distinct page");
        assert_eq!(st.translate_cache_hits, 7);
        assert_eq!(st.pages_mapped, 1, "mapped once, first touch");
        assert!(
            fast.elapsed() < legacy.elapsed(),
            "fast {} vs legacy {}",
            fast.elapsed(),
            legacy.elapsed()
        );
    }

    #[test]
    fn vectored_read_batches_walks_and_maps() {
        let (mut hv, id) = host_with_vm();
        let truth: Vec<u8> = (0..3 * PAGE_SIZE).map(|i| (i % 249) as u8).collect();
        hv.vm_mut(id)
            .unwrap()
            .write_virt(0x8000_0000, &truth)
            .unwrap();

        // Legacy loop: 3 reads, 3 walks, 3 maps.
        let mut legacy = VmiSession::attach(&hv, id).unwrap();
        let mut bufs = vec![vec![0u8; PAGE_SIZE]; 3];
        for (i, b) in bufs.iter_mut().enumerate() {
            legacy
                .read_va(0x8000_0000 + (i * PAGE_SIZE) as u64, b)
                .unwrap();
        }

        // Vectored: one plan — 3 walks, but one contiguous physical run.
        let mut fast = VmiSession::attach(&hv, id).unwrap().with_fast_capture();
        let mut vbufs = vec![vec![0u8; PAGE_SIZE]; 3];
        let mut reqs: Vec<VectoredRead<'_>> = vbufs
            .iter_mut()
            .enumerate()
            .map(|(i, b)| VectoredRead {
                va: 0x8000_0000 + (i * PAGE_SIZE) as u64,
                buf: b.as_mut_slice(),
            })
            .collect();
        fast.read_va_vectored(&mut reqs).unwrap();
        drop(reqs);
        assert_eq!(vbufs.concat(), truth);
        assert_eq!(bufs.concat(), truth);
        let st = fast.stats();
        assert_eq!(st.vectored_reads, 1);
        assert_eq!(st.reads, 3, "each request is a logical read");
        assert_eq!(st.page_walks, 3);
        assert_eq!(st.pages_mapped, 3);
        assert_eq!(st.bytes_copied, 3 * PAGE_SIZE as u64);
        assert!(
            fast.elapsed() < legacy.elapsed(),
            "run-batched maps must beat per-page maps: fast {} vs legacy {}",
            fast.elapsed(),
            legacy.elapsed()
        );
    }

    #[test]
    fn vectored_read_without_fast_capture_degrades_to_scalar() {
        let (hv, id) = host_with_vm();
        let mut s = VmiSession::attach(&hv, id).unwrap();
        let mut a = [0u8; 6];
        let mut b = [0u8; 7];
        let mut reqs = [
            VectoredRead {
                va: 0x8000_0000,
                buf: &mut a,
            },
            VectoredRead {
                va: 0x8000_0006,
                buf: &mut b,
            },
        ];
        s.read_va_vectored(&mut reqs).unwrap();
        drop(reqs);
        assert_eq!(&a, b"intros");
        assert_eq!(&b, b"pect me");
        assert_eq!(s.stats().vectored_reads, 0, "legacy path takes no credit");
        assert_eq!(s.stats().reads, 2);
    }

    #[test]
    fn vectored_read_of_unmapped_page_is_typed_error() {
        let (hv, id) = host_with_vm();
        let mut s = VmiSession::attach(&hv, id).unwrap().with_fast_capture();
        let mut good = [0u8; 8];
        let mut bad = [0u8; 8];
        let mut reqs = [
            VectoredRead {
                va: 0x8000_0000,
                buf: &mut good,
            },
            VectoredRead {
                va: 0xDEAD_0000,
                buf: &mut bad,
            },
        ];
        assert!(matches!(
            s.read_va_vectored(&mut reqs),
            Err(VmiError::Hv(HvError::UnmappedVa(_)))
        ));
        drop(reqs);
        assert_eq!(s.stats().pages_mapped, 0, "failed plan maps nothing");
    }

    #[test]
    fn vectored_stable_recovers_truth_under_torn_pages() {
        let (mut hv, id) = host_with_vm();
        let truth: Vec<u8> = (0..4096u32).map(|i| (i % 251) as u8).collect();
        hv.vm_mut(id)
            .unwrap()
            .write_virt(0x8000_1000, &truth)
            .unwrap();
        hv.set_fault_plan(id, Some(FaultPlan::none(5).with_torn_rate(0.4)))
            .unwrap();
        let mut s = VmiSession::attach(&hv, id)
            .unwrap()
            .with_fast_capture()
            .with_retry(RetryPolicy::with_max_retries(16));
        let mut tears = 0;
        for _ in 0..30 {
            let (mut lo, mut hi) = ([0u8; 2048], [0u8; 2048]);
            let mut reqs = [
                VectoredRead {
                    va: 0x8000_1000,
                    buf: &mut lo,
                },
                VectoredRead {
                    va: 0x8000_1800,
                    buf: &mut hi,
                },
            ];
            s.read_va_vectored_stable(&mut reqs).unwrap();
            drop(reqs);
            assert_eq!(&lo[..], &truth[..2048], "stable batch returned torn bytes");
            assert_eq!(&hi[..], &truth[2048..], "stable batch returned torn bytes");
            tears = s.stats().torn_detected;
        }
        assert!(tears > 0, "seed 5 @ 40% should tear in 30 batches");
        let st = s.stats();
        assert_eq!(st.reads, 60, "verification passes reclassified");
        assert_eq!(st.vectored_reads, 30);
        assert_eq!(st.bytes_copied, 30 * 4096);
        assert!(st.stability_rereads >= 60);
    }

    #[test]
    fn generation_probe_warms_the_translate_cache() {
        let (hv, id) = host_with_vm();
        let mut s = VmiSession::attach(&hv, id).unwrap().with_fast_capture();
        s.page_generation(0x8000_0000).unwrap();
        assert_eq!(s.stats().page_walks, 1);
        // The capture that follows the probe re-uses its walk.
        let mut buf = [0u8; 64];
        s.read_va(0x8000_0000, &mut buf).unwrap();
        let st = s.stats();
        assert_eq!(st.page_walks, 1, "probe already walked this page");
        assert_eq!(st.translate_cache_hits, 1);
        // Repeat probes are free.
        let before = s.elapsed();
        s.page_generation(0x8000_0000).unwrap();
        assert_eq!(s.elapsed(), before, "cached probe charges nothing");
        assert_eq!(s.stats().translate_cache_hits, 2);
    }

    #[test]
    fn arm_watches_plans_frames_and_rides_the_translate_cache() {
        let (mut hv, id) = host_with_vm();
        let plan = {
            let mut s = VmiSession::attach(&hv, id).unwrap().with_fast_capture();
            // A capture warms the cache; the watch plan that follows it
            // costs zero extra page walks.
            let mut buf = vec![0u8; 2 * PAGE_SIZE];
            s.read_va(0x8000_0000, &mut buf).unwrap();
            let walks = s.stats().page_walks;
            let plan = s.arm_watches(0x8000_0000, 2 * PAGE_SIZE as u64).unwrap();
            assert_eq!(s.stats().page_walks, walks, "rode the cache");
            assert_eq!(s.stats().translate_cache_hits, 2);
            assert_eq!(plan.frames.len(), 2);
            plan
        };
        assert_eq!(hv.apply_watch_plan(&plan).unwrap(), 2);

        // The armed watch traps the next guest write in the span.
        hv.vm_mut(id)
            .unwrap()
            .write_virt(0x8000_0000, b"!")
            .unwrap();
        let mut cur = mc_hypervisor::EventCursor::new();
        let evs = hv.drain_write_events(&mut cur);
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].frame, plan.frames[0]);
    }

    #[test]
    fn arm_watches_without_fast_capture_charges_one_walk_per_page() {
        let (hv, id) = host_with_vm();
        let mut s = VmiSession::attach(&hv, id).unwrap();
        s.take_elapsed();
        let plan = s.arm_watches(0x8000_0000, 3 * PAGE_SIZE as u64).unwrap();
        assert_eq!(plan.frames.len(), 3);
        assert_eq!(s.stats().page_walks, 3);
        assert!(s.arm_watches(0xDEAD_0000, 16).is_err(), "unmapped span");
    }
}
