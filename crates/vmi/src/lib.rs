//! Virtual machine introspection — the reproduction's libVMI.
//!
//! The paper introspects guests with libvmi-0.6: from the privileged VM it
//! resolves kernel symbols, translates guest virtual addresses by walking
//! the guest's page tables, maps foreign frames, and copies memory out.
//! [`VmiSession`] provides that surface over the simulated hypervisor with
//! two properties the reproduction depends on:
//!
//! * **Read-only.** There is deliberately no write API. ModChecker "performs
//!   read-only operations of the memory of guest VMs"; the type system
//!   enforces it (a session borrows the hypervisor immutably, so guests
//!   cannot change under it, and parallel sessions are safe).
//! * **Cost-accounted.** Every read charges simulated time to the session's
//!   ledger: per-page translation + foreign-map cost plus per-byte copy
//!   cost, scaled by the host contention factor captured at attach time.
//!   The performance figures (Fig. 7/8) are integrals of this ledger.
//!
//! Processing costs (parsing, hashing, diffing) are charged by the checker
//! via [`VmiSession::charge_process`], so one ledger carries a whole
//! per-VM check and can be split per component.

#![warn(missing_docs)]

use std::collections::HashSet;
use std::fmt;

use mc_hypervisor::{AddressWidth, HvError, Hypervisor, SimDuration, Vm, VmId, PAGE_SHIFT};

/// Introspection errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum VmiError {
    /// Underlying guest-memory/translation failure (e.g. unmapped page —
    /// possibly a hostile guest pointing us into the void).
    Hv(HvError),
    /// No VM with this name exists on the host.
    VmNotFound(String),
    /// The requested symbol is not in the VM's profile.
    UnknownSymbol(String),
}

impl fmt::Display for VmiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmiError::Hv(e) => write!(f, "guest access failed: {e}"),
            VmiError::VmNotFound(n) => write!(f, "no VM named {n:?}"),
            VmiError::UnknownSymbol(s) => write!(f, "symbol {s:?} not in profile"),
        }
    }
}

impl std::error::Error for VmiError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            VmiError::Hv(e) => Some(e),
            _ => None,
        }
    }
}

impl From<HvError> for VmiError {
    fn from(e: HvError) -> Self {
        VmiError::Hv(e)
    }
}

/// Access statistics for one session (used by benches and tests to verify
/// the page-granular access pattern).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct VmiStats {
    /// Number of `read_va` calls.
    pub reads: u64,
    /// Guest frames mapped (one per page crossed per read; no map cache, as
    /// in the paper's sequential prototype).
    pub pages_mapped: u64,
    /// Bytes copied out of the guest.
    pub bytes_copied: u64,
}

/// An introspection session against one guest VM.
///
/// Not `derive`d `Debug`: dumping the borrowed [`Vm`] (and with it the whole
/// guest memory image) would be useless noise, so the manual impl below
/// prints only the session-level state.
pub struct VmiSession<'hv> {
    vm: &'hv Vm,
    cost: mc_hypervisor::CostModel,
    slowdown: f64,
    elapsed: SimDuration,
    stats: VmiStats,
    /// Pages already mapped this session (libVMI's page cache). `None`
    /// reproduces the paper's prototype, which pays the foreign-map cost on
    /// every access (ablation ABL-5 measures the difference).
    page_cache: Option<HashSet<u64>>,
}

impl fmt::Debug for VmiSession<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("VmiSession")
            .field("vm", &self.vm.name)
            .field("slowdown", &self.slowdown)
            .field("elapsed", &self.elapsed)
            .field("stats", &self.stats)
            .field("page_cache", &self.page_cache.as_ref().map(HashSet::len))
            .finish()
    }
}

impl<'hv> VmiSession<'hv> {
    /// Attaches to a VM by id. Charges the attach cost.
    pub fn attach(hv: &'hv Hypervisor, id: VmId) -> Result<Self, VmiError> {
        let vm = hv.vm(id)?;
        let slowdown = hv.dom0_slowdown();
        let mut s = VmiSession {
            vm,
            cost: hv.cost,
            slowdown,
            elapsed: SimDuration::ZERO,
            stats: VmiStats::default(),
            page_cache: None,
        };
        s.charge(SimDuration::from_nanos(s.cost.vmi_attach_ns));
        Ok(s)
    }

    /// Enables the page-map cache for this session: a page crossed more
    /// than once charges its translation + foreign-map cost only the first
    /// time (per-byte copy costs still accrue). Mirrors libVMI's
    /// `--enable-address-cache`; the paper's prototype runs uncached.
    pub fn with_page_cache(mut self) -> Self {
        self.page_cache = Some(HashSet::new());
        self
    }

    /// Attaches to a VM by domain name.
    pub fn attach_by_name(hv: &'hv Hypervisor, name: &str) -> Result<Self, VmiError> {
        let vm = hv
            .vm_by_name(name)
            .ok_or_else(|| VmiError::VmNotFound(name.to_string()))?;
        Self::attach(hv, vm.id)
    }

    /// The introspected VM's name.
    pub fn vm_name(&self) -> &str {
        &self.vm.name
    }

    /// The introspected VM's id.
    pub fn vm_id(&self) -> VmId {
        self.vm.id
    }

    /// Guest pointer width (from the profile).
    pub fn width(&self) -> AddressWidth {
        self.vm.width()
    }

    /// Resolves a kernel symbol from the VM's profile (libVMI's
    /// `vmi_translate_ksym2v`).
    pub fn symbol(&mut self, name: &str) -> Result<u64, VmiError> {
        self.charge(SimDuration::from_nanos(self.cost.symbol_lookup_ns));
        self.vm
            .symbols
            .get(name)
            .copied()
            .ok_or_else(|| VmiError::UnknownSymbol(name.to_string()))
    }

    /// Reads guest-virtual memory into `buf`, charging per-page map +
    /// per-byte copy costs (libVMI's `vmi_read_va`).
    pub fn read_va(&mut self, va: u64, buf: &mut [u8]) -> Result<(), VmiError> {
        let pages = Vm::pages_crossed(va, buf.len() as u64);
        // With the cache enabled, only first-touch pages pay the map cost.
        let chargeable_pages = match &mut self.page_cache {
            None => pages,
            Some(cache) => {
                let first = va >> PAGE_SHIFT;
                (0..pages).filter(|i| cache.insert(first + i)).count() as u64
            }
        };
        self.stats.reads += 1;
        self.stats.pages_mapped += chargeable_pages;
        self.stats.bytes_copied += buf.len() as u64;
        self.charge(self.cost.read_cost(chargeable_pages, buf.len() as u64));
        self.vm.read_virt(va, buf)?;
        Ok(())
    }

    /// Reads a guest pointer (4/8 bytes by width).
    pub fn read_ptr(&mut self, va: u64) -> Result<u64, VmiError> {
        match self.width() {
            AddressWidth::W32 => {
                let mut b = [0u8; 4];
                self.read_va(va, &mut b)?;
                Ok(u32::from_le_bytes(b) as u64)
            }
            AddressWidth::W64 => {
                let mut b = [0u8; 8];
                self.read_va(va, &mut b)?;
                Ok(u64::from_le_bytes(b))
            }
        }
    }

    /// Reads a `u16`.
    pub fn read_u16(&mut self, va: u64) -> Result<u16, VmiError> {
        let mut b = [0u8; 2];
        self.read_va(va, &mut b)?;
        Ok(u16::from_le_bytes(b))
    }

    /// Reads a `u32`.
    pub fn read_u32(&mut self, va: u64) -> Result<u32, VmiError> {
        let mut b = [0u8; 4];
        self.read_va(va, &mut b)?;
        Ok(u32::from_le_bytes(b))
    }

    /// Charges non-introspection processing time (parser/hasher/differ) to
    /// this session's ledger, scaled by host contention.
    pub fn charge_process(&mut self, per_byte_ns: f64, bytes: u64) {
        self.charge(self.cost.process_cost(per_byte_ns, bytes));
    }

    /// The session's cost model (so callers use consistent constants).
    pub fn cost_model(&self) -> &mc_hypervisor::CostModel {
        &self.cost
    }

    /// Simulated time consumed so far.
    pub fn elapsed(&self) -> SimDuration {
        self.elapsed
    }

    /// Returns and resets the ledger (used to split time per component).
    pub fn take_elapsed(&mut self) -> SimDuration {
        std::mem::take(&mut self.elapsed)
    }

    /// Access statistics.
    pub fn stats(&self) -> VmiStats {
        self.stats
    }

    fn charge(&mut self, base: SimDuration) {
        self.elapsed += base.scaled(self.slowdown);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_hypervisor::PAGE_SIZE;

    fn host_with_vm() -> (Hypervisor, VmId) {
        let mut hv = Hypervisor::new();
        let id = hv.create_vm("dom1", AddressWidth::W32).unwrap();
        let vm = hv.vm_mut(id).unwrap();
        vm.map_range(0x8000_0000, 4 * PAGE_SIZE as u64).unwrap();
        vm.write_virt(0x8000_0000, b"introspect me").unwrap();
        vm.write_ptr(0x8000_0100, 0xF7AB_0000).unwrap();
        vm.symbols.insert("PsLoadedModuleList".into(), 0x8000_0100);
        (hv, id)
    }

    #[test]
    fn read_va_returns_guest_bytes() {
        let (hv, id) = host_with_vm();
        let mut s = VmiSession::attach(&hv, id).unwrap();
        let mut buf = [0u8; 13];
        s.read_va(0x8000_0000, &mut buf).unwrap();
        assert_eq!(&buf, b"introspect me");
        assert_eq!(s.stats().reads, 1);
        assert_eq!(s.stats().bytes_copied, 13);
        assert_eq!(s.stats().pages_mapped, 1);
    }

    #[test]
    fn symbol_resolution_and_ptr_read() {
        let (hv, id) = host_with_vm();
        let mut s = VmiSession::attach(&hv, id).unwrap();
        let head = s.symbol("PsLoadedModuleList").unwrap();
        assert_eq!(s.read_ptr(head).unwrap(), 0xF7AB_0000);
        assert!(matches!(
            s.symbol("NoSuchSymbol"),
            Err(VmiError::UnknownSymbol(_))
        ));
    }

    #[test]
    fn costs_accrue_per_page() {
        let (hv, id) = host_with_vm();
        let mut s = VmiSession::attach(&hv, id).unwrap();
        let after_attach = s.elapsed();
        assert!(after_attach > SimDuration::ZERO, "attach itself is charged");

        let mut small = [0u8; 16];
        s.read_va(0x8000_0000, &mut small).unwrap();
        let one_page_read = s.elapsed() - after_attach;

        let mut big = vec![0u8; 3 * PAGE_SIZE];
        let before = s.elapsed();
        s.read_va(0x8000_0000, &mut big).unwrap();
        let three_page_read = s.elapsed() - before;
        assert!(three_page_read.as_nanos() > 2 * one_page_read.as_nanos());
        assert_eq!(s.stats().pages_mapped, 1 + 3);
    }

    #[test]
    fn contention_scales_charges() {
        let (mut hv, id) = host_with_vm();
        let idle_cost = {
            let mut s = VmiSession::attach(&hv, id).unwrap();
            let mut buf = vec![0u8; 2 * PAGE_SIZE];
            s.read_va(0x8000_0000, &mut buf).unwrap();
            s.elapsed()
        };
        // Load the host far past its cores.
        for i in 0..20 {
            let v = hv.create_vm(&format!("ld{i}"), AddressWidth::W32).unwrap();
            hv.vm_mut(v).unwrap().cpu_demand = 1.0;
        }
        let loaded_cost = {
            let mut s = VmiSession::attach(&hv, id).unwrap();
            let mut buf = vec![0u8; 2 * PAGE_SIZE];
            s.read_va(0x8000_0000, &mut buf).unwrap();
            s.elapsed()
        };
        assert!(
            loaded_cost.as_nanos() > 2 * idle_cost.as_nanos(),
            "loaded {loaded_cost} vs idle {idle_cost}"
        );
    }

    #[test]
    fn take_elapsed_splits_ledger() {
        let (hv, id) = host_with_vm();
        let mut s = VmiSession::attach(&hv, id).unwrap();
        let phase1 = s.take_elapsed();
        assert!(phase1 > SimDuration::ZERO);
        assert_eq!(s.elapsed(), SimDuration::ZERO);
        s.charge_process(2.0, 1000);
        // 2000 ns scaled by the near-idle slowdown (~1.04).
        let ns = s.elapsed().as_nanos();
        assert!((2000..=2400).contains(&ns), "unexpected charge {ns}");
    }

    #[test]
    fn read_of_unmapped_guest_memory_is_typed_error() {
        let (hv, id) = host_with_vm();
        let mut s = VmiSession::attach(&hv, id).unwrap();
        let mut buf = [0u8; 4];
        assert!(matches!(
            s.read_va(0xDEAD_0000, &mut buf),
            Err(VmiError::Hv(HvError::UnmappedVa(_)))
        ));
    }

    #[test]
    fn page_cache_charges_first_touch_only() {
        let (hv, id) = host_with_vm();
        // Uncached: two reads of the same page charge two maps.
        let mut s = VmiSession::attach(&hv, id).unwrap();
        s.take_elapsed();
        let mut buf = [0u8; 64];
        s.read_va(0x8000_0000, &mut buf).unwrap();
        s.read_va(0x8000_0000, &mut buf).unwrap();
        let uncached = s.take_elapsed();
        assert_eq!(s.stats().pages_mapped, 2);

        // Cached: the second read only pays the copy cost.
        let mut s = VmiSession::attach(&hv, id).unwrap().with_page_cache();
        s.take_elapsed();
        s.read_va(0x8000_0000, &mut buf).unwrap();
        s.read_va(0x8000_0000, &mut buf).unwrap();
        let cached = s.take_elapsed();
        assert_eq!(s.stats().pages_mapped, 1);
        assert!(cached < uncached, "cached {cached} vs uncached {uncached}");

        // A different page still pays.
        s.read_va(0x8000_0000 + PAGE_SIZE as u64, &mut buf).unwrap();
        assert_eq!(s.stats().pages_mapped, 2);
    }

    #[test]
    fn page_cache_handles_multi_page_reads() {
        let (hv, id) = host_with_vm();
        let mut s = VmiSession::attach(&hv, id).unwrap().with_page_cache();
        let mut big = vec![0u8; 3 * PAGE_SIZE];
        s.read_va(0x8000_0000, &mut big).unwrap();
        assert_eq!(s.stats().pages_mapped, 3);
        // Overlapping re-read: only the fourth page is new.
        let mut big = vec![0u8; 4 * PAGE_SIZE];
        s.read_va(0x8000_0000, &mut big).unwrap();
        assert_eq!(s.stats().pages_mapped, 4);
    }

    #[test]
    fn attach_by_name() {
        let (hv, _id) = host_with_vm();
        assert!(VmiSession::attach_by_name(&hv, "dom1").is_ok());
        assert!(matches!(
            VmiSession::attach_by_name(&hv, "nope"),
            Err(VmiError::VmNotFound(_))
        ));
    }
}
