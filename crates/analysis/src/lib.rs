//! Single-VM static analysis for captured kernel-module images.
//!
//! ModChecker's core detector (the paper's Algorithm 1/2 pipeline) is
//! *differential*: it needs at least two VMs and flags disagreement. That
//! leaves two gaps this crate closes from a single VM, with no reference
//! image:
//!
//! * **Majority infection.** When a worm has infected most of a pool, the
//!   vote flags every VM without saying which ones actually carry the hook
//!   (§III's SQL-Slammer discussion). A per-VM static pass restores the
//!   signal.
//! * **Single-tenant hosts.** A lone VM has no peer to diff against.
//!
//! The engine runs nine lints over one captured image (or, for L5, one
//! guest's loaded-module list):
//!
//! | Lint | Name               | Catches                                      |
//! |------|--------------------|----------------------------------------------|
//! | L1   | entry-redirect     | inline-hook `JMP`/`CALL`/push-ret at an exported entry |
//! | L2   | escaping-transfer  | `rel32` transfers leaving the image, landing in non-executable sections, or appearing at all (clean driver profile uses absolute indirect calls) |
//! | L3   | cave-payload       | non-zero bytes in inter-function opcode caves / section slack |
//! | L4   | pe-structure       | DOS-stub tampering, unexpected imports, section-table lies |
//! | L5   | module-list        | unlinked-but-resident `LDR_DATA_TABLE_ENTRY` (DKOM), list asymmetry |
//! | L6   | indirect-transfer  | IAT slots diverging from the import name table — the pointer an indirect `CALL [disp32]` actually reads (IAT-pivot hooks) |
//! | L7   | unreachable-code   | non-zero executable bytes outside every function span and unreachable from all CFG roots (injected payload) |
//! | L8   | hidden-transfer    | CFG-reachable `rel32` transfers the linear sweep never decodes (junk-byte anti-disassembly) |
//! | L9   | overlapping-decode | two reachable instructions sharing bytes at different offsets (opcode aliasing) |
//!
//! L1–L3 are built on the crate's own x86 length decoder ([`decoder`]),
//! and L6–L9 on the recursive-descent CFG ([`cfg`]) layered above it;
//! L4/L6 are PE-shape checking; L5 walks guest memory through a read-only
//! [`mc_vmi::VmiSession`]. Known blind spots are documented in
//! `DESIGN.md` §4 (EXT-4): single-opcode substitutions below decoder
//! resolution (EXP-B1) remain cross-VM-only detections. (IAT data hooks,
//! formerly in that list, are now caught by L6.)

use std::fmt;

use mc_pe::PeError;
use mc_vmi::{VmiError, VmiSession};

pub mod cfg;
pub mod decoder;
mod lints;
mod list;

pub use list::{ListEntry, ListSurvey};

/// Walks one guest's `PsLoadedModuleList` and scans its pool neighborhood,
/// returning the structured [`ListSurvey`]: linked entries, orphaned
/// (DKOM-unlinked) entries, and the L5 diagnostics. This is the raw
/// product behind [`Analyzer::analyze_module_list`], exported for the
/// cross-view scanner, which votes surveys across a pool of clones.
///
/// # Errors
///
/// [`AnalysisError::Vmi`] when the list head cannot even be located or the
/// first link is unreadable; anomalies *within* a reachable list are
/// survey findings, not errors.
pub fn survey_module_list(session: &mut VmiSession<'_>) -> Result<ListSurvey, AnalysisError> {
    list::survey(session)
}

/// The nine lint families.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Lint {
    /// L1: control-flow redirection at a module entry point.
    EntryRedirect,
    /// L2: suspicious IP-relative control transfer.
    EscapingTransfer,
    /// L3: executable payload in an opcode cave or section slack.
    CavePayload,
    /// L4: PE structural invariant violation.
    PeStructure,
    /// L5: loaded-module-list structural invariant violation.
    ModuleList,
    /// L6: IAT slot disagrees with the import name table — the pointer an
    /// indirect transfer actually dispatches through has been replaced.
    IndirectTransfer,
    /// L7: executable bytes outside every function span and unreachable
    /// from every CFG root.
    UnreachableCode,
    /// L8: a CFG-reachable `rel32` transfer at an offset the linear sweep
    /// never decodes (sweep-vs-CFG disagreement).
    HiddenTransfer,
    /// L9: two CFG-reachable instructions decode the same bytes at
    /// different offsets.
    OverlappingDecode,
}

impl Lint {
    /// Short code (`L1`..`L9`).
    pub fn code(self) -> &'static str {
        match self {
            Lint::EntryRedirect => "L1",
            Lint::EscapingTransfer => "L2",
            Lint::CavePayload => "L3",
            Lint::PeStructure => "L4",
            Lint::ModuleList => "L5",
            Lint::IndirectTransfer => "L6",
            Lint::UnreachableCode => "L7",
            Lint::HiddenTransfer => "L8",
            Lint::OverlappingDecode => "L9",
        }
    }

    /// Human-readable lint name.
    pub fn name(self) -> &'static str {
        match self {
            Lint::EntryRedirect => "entry-redirect",
            Lint::EscapingTransfer => "escaping-transfer",
            Lint::CavePayload => "cave-payload",
            Lint::PeStructure => "pe-structure",
            Lint::ModuleList => "module-list",
            Lint::IndirectTransfer => "indirect-transfer",
            Lint::UnreachableCode => "unreachable-code",
            Lint::HiddenTransfer => "hidden-transfer",
            Lint::OverlappingDecode => "overlapping-decode",
        }
    }
}

impl fmt::Display for Lint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.code(), self.name())
    }
}

/// How bad a finding is.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Notable but not actionable alone.
    Info,
    /// Deviates from the clean-corpus profile.
    Warning,
    /// Structurally impossible in a clean module.
    Critical,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Critical => "critical",
        })
    }
}

/// How certain the lint is that the finding is real.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Confidence {
    /// Heuristic; expect false positives on unusual-but-legitimate code.
    Low,
    /// Profile-based; solid for this corpus, plausible FPs elsewhere.
    Medium,
    /// Invariant-based; a clean module cannot trigger it.
    High,
}

impl fmt::Display for Confidence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Confidence::Low => "low",
            Confidence::Medium => "medium",
            Confidence::High => "high",
        })
    }
}

/// One finding.
#[derive(Clone, Debug)]
pub struct Diagnostic {
    /// Which lint fired.
    pub lint: Lint,
    /// Finding severity.
    pub severity: Severity,
    /// Lint confidence.
    pub confidence: Confidence,
    /// Guest VA the finding anchors to.
    pub va: u64,
    /// Human-readable explanation.
    pub detail: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {}/{} @ {:#x}: {}",
            self.lint, self.severity, self.confidence, self.va, self.detail
        )
    }
}

/// Result of analyzing one module image (or one module list).
#[derive(Clone, Debug)]
pub struct AnalysisReport {
    /// VM the subject came from.
    pub vm_name: String,
    /// Module name, or `"PsLoadedModuleList"` for L5 reports.
    pub module: String,
    /// Findings, most severe first.
    pub diagnostics: Vec<Diagnostic>,
    /// Instructions length-decoded during the scan.
    pub instructions_decoded: usize,
    /// Bytes covered by the scan.
    pub bytes_scanned: usize,
}

impl AnalysisReport {
    /// True when nothing was flagged.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// True when at least one finding of `lint` is present.
    pub fn has(&self, lint: Lint) -> bool {
        self.diagnostics.iter().any(|d| d.lint == lint)
    }

    /// The most severe finding's severity, if any.
    pub fn max_severity(&self) -> Option<Severity> {
        self.diagnostics.iter().map(|d| d.severity).max()
    }
}

impl fmt::Display for AnalysisReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "static analysis of {} on {}: {} finding(s) ({} instruction(s) over {} byte(s))",
            self.module,
            self.vm_name,
            self.diagnostics.len(),
            self.instructions_decoded,
            self.bytes_scanned
        )?;
        for d in &self.diagnostics {
            writeln!(f, "  {d}")?;
        }
        Ok(())
    }
}

/// Tunables for the lint engine.
#[derive(Clone, Debug)]
pub struct AnalyzerConfig {
    /// DLL names a kernel module may legitimately import (case-insensitive).
    /// Mirrors the clean corpus: kernel modules bind only the kernel itself
    /// and the HAL.
    pub import_allowlist: Vec<String>,
    /// Cap on reported findings per subject.
    pub max_diagnostics: usize,
    /// Run the linear-sweep lints (L2/L3) on 64-bit images too. Off by
    /// default: a linear sweep of x86-64 code is only sound with function
    /// metadata (unwind info) to anchor on, and the synthetic W64 corpus
    /// additionally embeds 32-bit-only literals (`0x49` `DEC ECX`, a REX
    /// prefix in long mode) that make the stream ambiguous. The paper's
    /// guests are 32-bit XP SP2, where the sweep is exact. L1, L4 and L5
    /// run regardless of width.
    pub sweep_64bit: bool,
    /// Run the CFG-powered lints (L6–L9). On by default. L6 (import-table
    /// integrity, decode-free) and L7 (unreachable executable bytes,
    /// anchored on function spans and CFG reachability) are width-agnostic
    /// and run on 64-bit images too — this is what closes the former
    /// x86-64 coverage gap. L8/L9 compare against the linear sweep and so
    /// share `sweep_64bit`'s gating. Turning this off yields the
    /// sweep-only engine (L1–L5) for differential testing.
    pub cfg_lints: bool,
}

impl Default for AnalyzerConfig {
    fn default() -> Self {
        AnalyzerConfig {
            import_allowlist: vec!["ntoskrnl.exe".to_string(), "hal.dll".to_string()],
            max_diagnostics: 64,
            sweep_64bit: false,
            cfg_lints: true,
        }
    }
}

/// Analysis failure: the subject could not be examined at all. Individual
/// findings never surface as errors — they are [`Diagnostic`]s.
#[derive(Debug)]
pub enum AnalysisError {
    /// The image does not parse as a PE module.
    Pe(PeError),
    /// Guest memory could not be read (L5).
    Vmi(VmiError),
}

impl fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalysisError::Pe(e) => write!(f, "image does not parse: {e}"),
            AnalysisError::Vmi(e) => write!(f, "guest memory unreadable: {e}"),
        }
    }
}

impl std::error::Error for AnalysisError {}

impl From<PeError> for AnalysisError {
    fn from(e: PeError) -> Self {
        AnalysisError::Pe(e)
    }
}

impl From<VmiError> for AnalysisError {
    fn from(e: VmiError) -> Self {
        AnalysisError::Vmi(e)
    }
}

/// The lint engine.
#[derive(Clone, Debug, Default)]
pub struct Analyzer {
    /// Engine configuration.
    pub config: AnalyzerConfig,
}

impl Analyzer {
    /// An analyzer with the default configuration.
    pub fn new() -> Self {
        Analyzer::default()
    }

    /// An analyzer with a custom configuration.
    pub fn with_config(config: AnalyzerConfig) -> Self {
        Analyzer { config }
    }

    /// Runs lints L1–L4 over one captured memory-layout module image.
    ///
    /// `base` is the module's load address (`DllBase`); `bytes` is the
    /// `SizeOfImage`-long capture, as produced by the Module-Searcher.
    ///
    /// # Errors
    ///
    /// [`AnalysisError::Pe`] when the capture does not parse as a PE image
    /// (which a caller may reasonably treat as a finding in itself).
    pub fn analyze_image(
        &self,
        vm_name: &str,
        module: &str,
        base: u64,
        bytes: &[u8],
    ) -> Result<AnalysisReport, AnalysisError> {
        let parsed = mc_pe::parser::ParsedModule::parse_memory(bytes)?;
        let (mut diagnostics, stats) = lints::run(&parsed, base, bytes, &self.config);
        diagnostics.sort_by(|a, b| b.severity.cmp(&a.severity).then(a.va.cmp(&b.va)));
        diagnostics.truncate(self.config.max_diagnostics);
        Ok(AnalysisReport {
            vm_name: vm_name.to_string(),
            module: module.to_string(),
            diagnostics,
            instructions_decoded: stats.instructions,
            bytes_scanned: stats.bytes,
        })
    }

    /// Runs lint L5 over one guest's `PsLoadedModuleList` (read-only VMI).
    ///
    /// # Errors
    ///
    /// [`AnalysisError::Vmi`] when the list head cannot even be located or
    /// the first link is unreadable; anomalies *within* a reachable list
    /// are findings, not errors.
    pub fn analyze_module_list(
        &self,
        session: &mut VmiSession<'_>,
    ) -> Result<AnalysisReport, AnalysisError> {
        let (mut diagnostics, bytes_scanned) = list::run(session, &self.config)?;
        diagnostics.sort_by(|a, b| b.severity.cmp(&a.severity).then(a.va.cmp(&b.va)));
        diagnostics.truncate(self.config.max_diagnostics);
        Ok(AnalysisReport {
            vm_name: session.vm_name().to_string(),
            module: "PsLoadedModuleList".to_string(),
            diagnostics,
            instructions_decoded: 0,
            bytes_scanned,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_guest::{build_cloud_with_modules, GuestOs};
    use mc_hypervisor::{AddressWidth, Hypervisor, PAGE_SIZE};
    use mc_pe::corpus::ModuleBlueprint;
    use mc_pe::parser::ParsedModule;

    fn blueprints(width: AddressWidth) -> Vec<ModuleBlueprint> {
        vec![
            ModuleBlueprint::new("ntoskrnl.exe", width, 32 * 1024)
                .with_exports(&["KeBugCheck", "ExAllocatePool"]),
            ModuleBlueprint::new("hal.dll", width, 16 * 1024)
                .with_exports(&["HalInitSystem", "HalReturnToFirmware"])
                .with_imports(&[("ntoskrnl.exe", &["KeBugCheck"])]),
            ModuleBlueprint::new("http.sys", width, 24 * 1024).with_imports(&[
                ("ntoskrnl.exe", &["ExAllocatePool"]),
                ("hal.dll", &["HalInitSystem"]),
            ]),
        ]
    }

    fn cloud(width: AddressWidth) -> (Hypervisor, Vec<GuestOs>) {
        let mut hv = Hypervisor::new();
        let guests = build_cloud_with_modules(&mut hv, 1, width, &blueprints(width)).unwrap();
        (hv, guests)
    }

    /// Captures a loaded module's memory image straight off the guest.
    fn capture(hv: &Hypervisor, guest: &GuestOs, name: &str) -> (u64, Vec<u8>) {
        let m = guest.find_module(name).unwrap();
        let mut s = mc_vmi::VmiSession::attach(hv, guest.vm).unwrap();
        let mut bytes = vec![0u8; m.size as usize];
        for (i, chunk) in bytes.chunks_mut(PAGE_SIZE).enumerate() {
            s.read_va(m.base + (i * PAGE_SIZE) as u64, chunk).unwrap();
        }
        (m.base, bytes)
    }

    #[test]
    fn clean_modules_yield_zero_findings() {
        for width in [AddressWidth::W32, AddressWidth::W64] {
            let (hv, guests) = cloud(width);
            for bp in blueprints(width) {
                let (base, bytes) = capture(&hv, &guests[0], &bp.name);
                let report = Analyzer::new()
                    .analyze_image("dom1", &bp.name, base, &bytes)
                    .unwrap();
                assert!(
                    report.is_clean(),
                    "{} ({width:?}) must be clean, got:\n{report}",
                    bp.name
                );
                if width == AddressWidth::W32 {
                    assert!(report.instructions_decoded > 100, "the sweep really ran");
                } else {
                    // L2/L3 sweeps stay opt-in on x86-64, but the CFG
                    // traversal (L6/L7) still covers the image: exported
                    // modules get decoded streams, and the unreachable-code
                    // scan always walks the executable bytes.
                    assert!(report.bytes_scanned > 0, "the CFG lints really ran");
                    if !bp.exports.is_empty() {
                        assert!(report.instructions_decoded > 0, "exports seed the CFG");
                    }
                }
            }
            let mut s = mc_vmi::VmiSession::attach(&hv, guests[0].vm).unwrap();
            let list = Analyzer::new().analyze_module_list(&mut s).unwrap();
            assert!(list.is_clean(), "clean list flagged:\n{list}");
        }
    }

    #[test]
    fn hand_rolled_inline_hook_trips_l1_l2_l3() {
        let (mut hv, guests) = cloud(AddressWidth::W32);
        // Regenerate the deterministic geometry the guest's hal.dll carries.
        let art = blueprints(AddressWidth::W32).remove(1).generate();
        let f = art.code.functions[0];
        let cave = art.code.caves[0];
        let (base, bytes) = capture(&hv, &guests[0], "hal.dll");
        let parsed = ParsedModule::parse_memory(&bytes).unwrap();
        let text_va = u64::from(parsed.sections[0].virtual_address);

        // entry: JMP rel32 -> cave; cave: PUSHA payload.
        let rel = (i64::from(cave.offset) - i64::from(f.entry) - 5) as i32;
        let mut jmp = vec![0xE9u8];
        jmp.extend(rel.to_le_bytes());
        guests[0]
            .patch_module(&mut hv, "hal.dll", text_va + u64::from(f.entry), &jmp)
            .unwrap();
        guests[0]
            .patch_module(
                &mut hv,
                "hal.dll",
                text_va + u64::from(cave.offset),
                &[0x60, 0x90, 0x90, 0x61],
            )
            .unwrap();

        let (base, bytes) = {
            let _ = (base, bytes);
            capture(&hv, &guests[0], "hal.dll")
        };
        let report = Analyzer::new()
            .analyze_image("dom1", "hal.dll", base, &bytes)
            .unwrap();
        assert!(report.has(Lint::EntryRedirect), "L1 missing:\n{report}");
        assert!(report.has(Lint::EscapingTransfer), "L2 missing:\n{report}");
        assert!(report.has(Lint::CavePayload), "L3 missing:\n{report}");
        assert_eq!(report.max_severity(), Some(Severity::Critical));
    }

    #[test]
    fn rel32_escaping_the_image_is_critical() {
        let (mut hv, guests) = cloud(AddressWidth::W32);
        let art = blueprints(AddressWidth::W32).remove(1).generate();
        let f = art.code.functions[1];
        let (_, bytes) = capture(&hv, &guests[0], "hal.dll");
        let parsed = ParsedModule::parse_memory(&bytes).unwrap();
        let text_va = u64::from(parsed.sections[0].virtual_address);
        // CALL rel32 far past SizeOfImage, planted mid-function.
        let mut call = vec![0xE8u8];
        call.extend(0x0100_0000i32.to_le_bytes());
        guests[0]
            .patch_module(&mut hv, "hal.dll", text_va + u64::from(f.entry + 6), &call)
            .unwrap();
        let (base, bytes) = capture(&hv, &guests[0], "hal.dll");
        let report = Analyzer::new()
            .analyze_image("dom1", "hal.dll", base, &bytes)
            .unwrap();
        let d = report
            .diagnostics
            .iter()
            .find(|d| d.lint == Lint::EscapingTransfer)
            .expect("L2 fires");
        assert_eq!(d.severity, Severity::Critical);
        assert!(
            d.detail.contains("outside the module image"),
            "{}",
            d.detail
        );
    }

    #[test]
    fn stub_message_tamper_trips_l4() {
        let (mut hv, guests) = cloud(AddressWidth::W32);
        let (_, bytes) = capture(&hv, &guests[0], "http.sys");
        let at = bytes
            .windows(3)
            .position(|w| w == b"DOS")
            .expect("stub message present") as u64;
        guests[0]
            .patch_module(&mut hv, "http.sys", at, b"CHK")
            .unwrap();
        let (base, bytes) = capture(&hv, &guests[0], "http.sys");
        let report = Analyzer::new()
            .analyze_image("dom1", "http.sys", base, &bytes)
            .unwrap();
        assert!(report.has(Lint::PeStructure), "L4 missing:\n{report}");
        assert!(report.diagnostics[0].detail.contains("DOS stub"));
    }

    #[test]
    fn foreign_import_trips_l4() {
        let width = AddressWidth::W32;
        let mut bps = blueprints(width);
        bps.push(
            ModuleBlueprint::new("dummy.sys", width, 12 * 1024)
                .with_imports(&[("inject.dll", &["callMessageBox"])]),
        );
        let mut hv = Hypervisor::new();
        let guests = build_cloud_with_modules(&mut hv, 1, width, &bps).unwrap();
        let (base, bytes) = capture(&hv, &guests[0], "dummy.sys");
        let report = Analyzer::new()
            .analyze_image("dom1", "dummy.sys", base, &bytes)
            .unwrap();
        assert!(report.has(Lint::PeStructure), "L4 missing:\n{report}");
        assert!(report.diagnostics[0].detail.contains("inject.dll"));
    }

    #[test]
    fn dkom_hidden_module_found_by_orphan_scan() {
        for width in [AddressWidth::W32, AddressWidth::W64] {
            let (mut hv, guests) = cloud(width);
            guests[0].dkom_hide(&mut hv, "hal.dll").unwrap();
            let mut s = mc_vmi::VmiSession::attach(&hv, guests[0].vm).unwrap();
            let report = Analyzer::new().analyze_module_list(&mut s).unwrap();
            assert!(
                report.has(Lint::ModuleList),
                "L5 missing ({width:?}):\n{report}"
            );
            let orphan = report
                .diagnostics
                .iter()
                .find(|d| d.detail.contains("unlinked"))
                .expect("orphan diagnostic");
            assert!(orphan.detail.contains("hal.dll"), "{}", orphan.detail);
        }
    }

    #[test]
    fn blink_corruption_trips_l5_symmetry() {
        let (mut hv, guests) = cloud(AddressWidth::W32);
        let offs = mc_guest::ldr::LdrOffsets::for_width(AddressWidth::W32);
        let entry = guests[0].modules[1].ldr_entry_va;
        hv.vm_mut(guests[0].vm)
            .unwrap()
            .write_ptr(entry + offs.blink, 0xDEAD_0000)
            .unwrap();
        let mut s = mc_vmi::VmiSession::attach(&hv, guests[0].vm).unwrap();
        let report = Analyzer::new().analyze_module_list(&mut s).unwrap();
        assert!(
            report.has(Lint::ModuleList),
            "symmetry check missing:\n{report}"
        );
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.detail.contains("BLINK")));
    }

    #[test]
    fn garbage_capture_is_a_typed_error() {
        let err = Analyzer::new()
            .analyze_image("dom1", "junk", 0x1000, &[0u8; 64])
            .unwrap_err();
        assert!(matches!(err, AnalysisError::Pe(_)), "{err}");
    }
}
