//! L5 — structural invariants of the guest's `PsLoadedModuleList`.
//!
//! A DKOM rootkit hides a driver by unlinking its `LDR_DATA_TABLE_ENTRY`
//! from the doubly linked list: the neighbors are stitched together and the
//! walk never reports the module. The entry itself, however, stays resident
//! in pool memory, and its own `FLINK`/`BLINK` still point at live list
//! nodes — a shape nothing legitimate produces. This lint walks the list
//! (checking forward/backward symmetry and `DllBase` disjointness), then
//! scans the pool neighborhood of the visible entries for exactly such
//! orphaned nodes.
//!
//! Beyond the diagnostics, the walk's raw product is exported as a
//! [`ListSurvey`]: every linked entry and every orphaned entry with its
//! recovered identity (name, `DllBase`, `SizeOfImage`). The cross-view
//! scanner in `mc-core` votes surveys across a pool of clones to catch
//! adversaries that unlink on *every* VM — a single-VM list diff has no
//! majority left to compare against, but the orphaned-entry residue and
//! the still-mapped image are physical facts a vote across surveys can
//! agree on.
//!
//! Everything is read-only VMI; like the Module-Searcher the walk is
//! bounded and cycle-checked so hostile list data degrades into findings
//! rather than hangs.

use std::collections::HashSet;

use mc_guest::ldr::{decode_utf16, LdrOffsets};
use mc_guest::PS_LOADED_MODULE_LIST;
use mc_hypervisor::PAGE_SIZE;
use mc_vmi::VmiSession;

use crate::{AnalysisError, AnalyzerConfig, Confidence, Diagnostic, Lint, Severity};

/// Upper bound on the list walk (matches the searcher's hardening).
const MAX_WALK: usize = 512;
/// Pool pages scanned beyond the lowest/highest visible entry. Entry and
/// name-buffer allocations are page-aligned with randomized guard gaps of
/// up to 64 pages, so 128 pages of margin covers an entry hidden past
/// either end of the visible allocation span.
const MARGIN_PAGES: u64 = 128;
/// Cap on a `BaseDllName` read during orphan identification.
const MAX_NAME_BYTES: u16 = 512;

/// One `LDR_DATA_TABLE_ENTRY` observed by the survey, linked or orphaned,
/// with whatever identity could be recovered from guest memory.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ListEntry {
    /// Virtual address of the entry itself.
    pub entry_va: u64,
    /// Decoded `BaseDllName`, if readable.
    pub name: Option<String>,
    /// `DllBase`, if readable. For a checker-blinding adversary this is
    /// the *claimed* base — the cross-view sweep is what notices that no
    /// entry claims the truly mapped image.
    pub base: Option<u64>,
    /// `SizeOfImage`, if readable.
    pub size: Option<u64>,
}

/// Structured product of the L5 walk plus orphan scan over one VM.
#[derive(Clone, Debug, Default)]
pub struct ListSurvey {
    /// Entries reachable by the forward walk, walk order.
    pub linked: Vec<ListEntry>,
    /// Node-shaped pool residue whose links point into the live list but
    /// which the list no longer reaches — DKOM unlink leftovers.
    pub orphans: Vec<ListEntry>,
    /// The L5 diagnostics (identical to what `analyze_module_list` emits).
    pub diagnostics: Vec<Diagnostic>,
    /// Pool bytes scanned by the orphan pass.
    pub bytes_scanned: usize,
}

/// Runs L5. Returns findings plus the number of pool bytes scanned.
pub(crate) fn run(
    session: &mut VmiSession<'_>,
    _cfg: &AnalyzerConfig,
) -> Result<(Vec<Diagnostic>, usize), AnalysisError> {
    let s = survey(session)?;
    Ok((s.diagnostics, s.bytes_scanned))
}

/// Walks the list and scans the pool neighborhood, returning the full
/// structured survey (see [`ListSurvey`]).
#[allow(clippy::too_many_lines)]
pub(crate) fn survey(session: &mut VmiSession<'_>) -> Result<ListSurvey, AnalysisError> {
    let offs = LdrOffsets::for_width(session.width());
    let head = session.symbol(PS_LOADED_MODULE_LIST)?;
    let mut out = Vec::new();

    // Forward walk with symmetry checking: for every traversed link
    // `cur -> next`, the target's BLINK must point back at `cur`.
    let mut nodes: Vec<u64> = Vec::new();
    let mut seen = HashSet::new();
    let mut cur = head;
    let mut next = session.read_ptr(head + offs.flink)?;
    while next != head {
        if nodes.len() >= MAX_WALK || !seen.insert(next) {
            out.push(Diagnostic {
                lint: Lint::ModuleList,
                severity: Severity::Critical,
                confidence: Confidence::High,
                va: next,
                detail: format!(
                    "module list does not return to the head within {MAX_WALK} steps \
                     (cycle or forged FLINK chain)"
                ),
            });
            break;
        }
        match session.read_ptr(next + offs.blink) {
            Ok(b) if b == cur => {}
            Ok(b) => out.push(Diagnostic {
                lint: Lint::ModuleList,
                severity: Severity::Critical,
                confidence: Confidence::High,
                va: next,
                detail: format!(
                    "BLINK {b:#x} of entry {next:#x} does not point back at its \
                     predecessor {cur:#x}"
                ),
            }),
            Err(_) => {
                out.push(Diagnostic {
                    lint: Lint::ModuleList,
                    severity: Severity::Critical,
                    confidence: Confidence::High,
                    va: next,
                    detail: "list entry is unreadable guest memory".to_string(),
                });
                break;
            }
        }
        nodes.push(next);
        cur = next;
        match session.read_ptr(cur + offs.flink) {
            Ok(n) => next = n,
            Err(_) => {
                out.push(Diagnostic {
                    lint: Lint::ModuleList,
                    severity: Severity::Critical,
                    confidence: Confidence::High,
                    va: cur,
                    detail: "FLINK points at unreadable guest memory".to_string(),
                });
                break;
            }
        }
    }
    if let Ok(head_blink) = session.read_ptr(head + offs.blink) {
        if head_blink != cur && next == head {
            out.push(Diagnostic {
                lint: Lint::ModuleList,
                severity: Severity::Critical,
                confidence: Confidence::High,
                va: head,
                detail: format!(
                    "head BLINK {head_blink:#x} disagrees with the last walked entry {cur:#x}"
                ),
            });
        }
    }

    // Identify every walked entry (name, base, size). Visible modules must
    // occupy disjoint address ranges.
    let linked: Vec<ListEntry> = nodes
        .iter()
        .map(|&n| identify_entry(session, &offs, n))
        .collect();
    let mut ranges: Vec<(u64, u64, u64)> = linked
        .iter()
        .filter_map(|e| Some((e.base?, e.size?, e.entry_va)))
        .collect();
    ranges.sort_unstable();
    for w in ranges.windows(2) {
        if w[0].0 + w[0].1 > w[1].0 {
            out.push(Diagnostic {
                lint: Lint::ModuleList,
                severity: Severity::Critical,
                confidence: Confidence::High,
                va: w[1].2,
                detail: format!(
                    "DllBase ranges overlap: [{:#x}, +{:#x}) and [{:#x}, +{:#x})",
                    w[0].0, w[0].1, w[1].0, w[1].1
                ),
            });
        }
    }

    // Orphan scan: page-aligned pool allocations in the neighborhood of the
    // visible entries whose links point INTO the list but whose neighbors
    // no longer point back — the post-unlink residue of DKOM hiding.
    let mut orphans = Vec::new();
    let mut bytes_scanned = 0usize;
    if let (Some(&lo), Some(&hi)) = (nodes.iter().min(), nodes.iter().max()) {
        let page = PAGE_SIZE as u64;
        let start = (lo & !(page - 1)).saturating_sub(MARGIN_PAGES * page);
        let end = (hi & !(page - 1)) + MARGIN_PAGES * page;
        let targets: HashSet<u64> = nodes.iter().copied().chain([head]).collect();
        let mut candidate = start;
        while candidate < end {
            let c = candidate;
            candidate += page;
            bytes_scanned += PAGE_SIZE;
            if targets.contains(&c) {
                continue;
            }
            let Ok(f) = session.read_ptr(c + offs.flink) else {
                continue;
            };
            let Ok(b) = session.read_ptr(c + offs.blink) else {
                continue;
            };
            if !targets.contains(&f) || !targets.contains(&b) {
                continue;
            }
            // Node-shaped. Linked nodes were walked already; an entry whose
            // forward neighbor does not link back is orphaned.
            if session.read_ptr(f + offs.blink) == Ok(c) {
                continue;
            }
            let entry = identify_entry(session, &offs, c);
            let identity = match (&entry.name, entry.base) {
                (Some(n), Some(b)) => format!(" for '{n}' (DllBase {b:#x})"),
                (Some(n), None) => format!(" for '{n}'"),
                (None, Some(b)) => format!(" (DllBase {b:#x})"),
                (None, None) => String::new(),
            };
            out.push(Diagnostic {
                lint: Lint::ModuleList,
                severity: Severity::Critical,
                confidence: Confidence::High,
                va: c,
                detail: format!(
                    "unlinked LDR_DATA_TABLE_ENTRY{identity} still resident in the pool \
                     with links into the live list — DKOM module hiding"
                ),
            });
            orphans.push(entry);
        }
    }

    Ok(ListSurvey {
        linked,
        orphans,
        diagnostics: out,
        bytes_scanned,
    })
}

/// Best-effort identification of an entry: name, base, size.
fn identify_entry(session: &mut VmiSession<'_>, offs: &LdrOffsets, entry: u64) -> ListEntry {
    let base = session.read_ptr(entry + offs.dll_base).ok();
    let size = session
        .read_u32(entry + offs.size_of_image)
        .ok()
        .map(u64::from);
    let ustr = entry + offs.base_dll_name;
    let name = (|| {
        let len = session.read_u16(ustr).ok()?.min(MAX_NAME_BYTES) & !1;
        let buffer = session.read_ptr(ustr + offs.ustr_buffer).ok()?;
        let mut raw = vec![0u8; len as usize];
        session.read_va(buffer, &mut raw).ok()?;
        Some(decode_utf16(&raw))
    })();
    ListEntry {
        entry_va: entry,
        name,
        base,
        size,
    }
}
