//! L5 — structural invariants of the guest's `PsLoadedModuleList`.
//!
//! A DKOM rootkit hides a driver by unlinking its `LDR_DATA_TABLE_ENTRY`
//! from the doubly linked list: the neighbors are stitched together and the
//! walk never reports the module. The entry itself, however, stays resident
//! in pool memory, and its own `FLINK`/`BLINK` still point at live list
//! nodes — a shape nothing legitimate produces. This lint walks the list
//! (checking forward/backward symmetry and `DllBase` disjointness), then
//! scans the pool neighborhood of the visible entries for exactly such
//! orphaned nodes.
//!
//! Everything is read-only VMI; like the Module-Searcher the walk is
//! bounded and cycle-checked so hostile list data degrades into findings
//! rather than hangs.

use std::collections::HashSet;

use mc_guest::ldr::{decode_utf16, LdrOffsets};
use mc_guest::PS_LOADED_MODULE_LIST;
use mc_hypervisor::PAGE_SIZE;
use mc_vmi::VmiSession;

use crate::{AnalysisError, AnalyzerConfig, Confidence, Diagnostic, Lint, Severity};

/// Upper bound on the list walk (matches the searcher's hardening).
const MAX_WALK: usize = 512;
/// Pool pages scanned beyond the lowest/highest visible entry. Entry and
/// name-buffer allocations are page-aligned with randomized guard gaps of
/// up to 64 pages, so 128 pages of margin covers an entry hidden past
/// either end of the visible allocation span.
const MARGIN_PAGES: u64 = 128;
/// Cap on a `BaseDllName` read during orphan identification.
const MAX_NAME_BYTES: u16 = 512;

/// Runs L5. Returns findings plus the number of pool bytes scanned.
pub(crate) fn run(
    session: &mut VmiSession<'_>,
    _cfg: &AnalyzerConfig,
) -> Result<(Vec<Diagnostic>, usize), AnalysisError> {
    let offs = LdrOffsets::for_width(session.width());
    let head = session.symbol(PS_LOADED_MODULE_LIST)?;
    let mut out = Vec::new();

    // Forward walk with symmetry checking: for every traversed link
    // `cur -> next`, the target's BLINK must point back at `cur`.
    let mut nodes: Vec<u64> = Vec::new();
    let mut seen = HashSet::new();
    let mut cur = head;
    let mut next = session.read_ptr(head + offs.flink)?;
    while next != head {
        if nodes.len() >= MAX_WALK || !seen.insert(next) {
            out.push(Diagnostic {
                lint: Lint::ModuleList,
                severity: Severity::Critical,
                confidence: Confidence::High,
                va: next,
                detail: format!(
                    "module list does not return to the head within {MAX_WALK} steps \
                     (cycle or forged FLINK chain)"
                ),
            });
            break;
        }
        match session.read_ptr(next + offs.blink) {
            Ok(b) if b == cur => {}
            Ok(b) => out.push(Diagnostic {
                lint: Lint::ModuleList,
                severity: Severity::Critical,
                confidence: Confidence::High,
                va: next,
                detail: format!(
                    "BLINK {b:#x} of entry {next:#x} does not point back at its \
                     predecessor {cur:#x}"
                ),
            }),
            Err(_) => {
                out.push(Diagnostic {
                    lint: Lint::ModuleList,
                    severity: Severity::Critical,
                    confidence: Confidence::High,
                    va: next,
                    detail: "list entry is unreadable guest memory".to_string(),
                });
                break;
            }
        }
        nodes.push(next);
        cur = next;
        match session.read_ptr(cur + offs.flink) {
            Ok(n) => next = n,
            Err(_) => {
                out.push(Diagnostic {
                    lint: Lint::ModuleList,
                    severity: Severity::Critical,
                    confidence: Confidence::High,
                    va: cur,
                    detail: "FLINK points at unreadable guest memory".to_string(),
                });
                break;
            }
        }
    }
    if let Ok(head_blink) = session.read_ptr(head + offs.blink) {
        if head_blink != cur && next == head {
            out.push(Diagnostic {
                lint: Lint::ModuleList,
                severity: Severity::Critical,
                confidence: Confidence::High,
                va: head,
                detail: format!(
                    "head BLINK {head_blink:#x} disagrees with the last walked entry {cur:#x}"
                ),
            });
        }
    }

    // Visible modules must occupy disjoint address ranges.
    let mut ranges: Vec<(u64, u64, u64)> = nodes
        .iter()
        .filter_map(|&n| {
            let base = session.read_ptr(n + offs.dll_base).ok()?;
            let size = u64::from(session.read_u32(n + offs.size_of_image).ok()?);
            Some((base, size, n))
        })
        .collect();
    ranges.sort_unstable();
    for w in ranges.windows(2) {
        if w[0].0 + w[0].1 > w[1].0 {
            out.push(Diagnostic {
                lint: Lint::ModuleList,
                severity: Severity::Critical,
                confidence: Confidence::High,
                va: w[1].2,
                detail: format!(
                    "DllBase ranges overlap: [{:#x}, +{:#x}) and [{:#x}, +{:#x})",
                    w[0].0, w[0].1, w[1].0, w[1].1
                ),
            });
        }
    }

    // Orphan scan: page-aligned pool allocations in the neighborhood of the
    // visible entries whose links point INTO the list but whose neighbors
    // no longer point back — the post-unlink residue of DKOM hiding.
    let mut bytes_scanned = 0usize;
    if let (Some(&lo), Some(&hi)) = (nodes.iter().min(), nodes.iter().max()) {
        let page = PAGE_SIZE as u64;
        let start = (lo & !(page - 1)).saturating_sub(MARGIN_PAGES * page);
        let end = (hi & !(page - 1)) + MARGIN_PAGES * page;
        let targets: HashSet<u64> = nodes.iter().copied().chain([head]).collect();
        let mut candidate = start;
        while candidate < end {
            let c = candidate;
            candidate += page;
            bytes_scanned += PAGE_SIZE;
            if targets.contains(&c) {
                continue;
            }
            let Ok(f) = session.read_ptr(c + offs.flink) else {
                continue;
            };
            let Ok(b) = session.read_ptr(c + offs.blink) else {
                continue;
            };
            if !targets.contains(&f) || !targets.contains(&b) {
                continue;
            }
            // Node-shaped. Linked nodes were walked already; an entry whose
            // forward neighbor does not link back is orphaned.
            if session.read_ptr(f + offs.blink) == Ok(c) {
                continue;
            }
            let identity = describe_entry(session, &offs, c);
            out.push(Diagnostic {
                lint: Lint::ModuleList,
                severity: Severity::Critical,
                confidence: Confidence::High,
                va: c,
                detail: format!(
                    "unlinked LDR_DATA_TABLE_ENTRY{identity} still resident in the pool \
                     with links into the live list — DKOM module hiding"
                ),
            });
        }
    }

    Ok((out, bytes_scanned))
}

/// Best-effort identification of an orphaned entry (name + base).
fn describe_entry(session: &mut VmiSession<'_>, offs: &LdrOffsets, entry: u64) -> String {
    let ustr = entry + offs.base_dll_name;
    let name = (|| {
        let len = session.read_u16(ustr).ok()?.min(MAX_NAME_BYTES) & !1;
        let buffer = session.read_ptr(ustr + offs.ustr_buffer).ok()?;
        let mut raw = vec![0u8; len as usize];
        session.read_va(buffer, &mut raw).ok()?;
        Some(decode_utf16(&raw))
    })();
    let base = session.read_ptr(entry + offs.dll_base).ok();
    match (name, base) {
        (Some(n), Some(b)) => format!(" for '{n}' (DllBase {b:#x})"),
        (Some(n), None) => format!(" for '{n}'"),
        (None, Some(b)) => format!(" (DllBase {b:#x})"),
        (None, None) => String::new(),
    }
}
