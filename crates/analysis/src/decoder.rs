//! From-scratch x86/x86-64 length disassembler.
//!
//! ModChecker's cross-VM comparison needs no instruction knowledge, but the
//! single-VM lint engine does: telling an inline hook's `JMP rel32` apart
//! from the four instruction bytes it overwrote requires walking `.text` on
//! instruction boundaries. This module implements just enough of the x86
//! instruction grammar to do that walk — legacy prefixes, REX (64-bit mode
//! only), the one-byte and common two-byte opcode maps, and the
//! ModRM/SIB/displacement/immediate tail — without modelling semantics
//! beyond the three classes the lints care about: relative branches,
//! returns, and everything else.
//!
//! The decoder is a *length* decoder: it never fails, it only degrades. An
//! opcode outside the implemented maps yields [`Kind::Unknown`] with a
//! one-byte length so the linear sweep resynchronizes instead of aborting;
//! lints treat unknown opcodes as low-confidence signals, not errors.

/// Decoding mode, per the module's pointer width.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mode {
    /// 32-bit protected mode (PE32 modules).
    Bits32,
    /// 64-bit long mode (PE32+ modules): `0x40..=0x4F` are REX prefixes.
    Bits64,
}

/// Instruction class, as coarse as the lints need.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Kind {
    /// `CALL`/`JMP`/`Jcc` with an IP-relative displacement. `target` is the
    /// branch destination as a byte offset into the decoded buffer (may be
    /// out of range — that is exactly what lint L2 checks). `rel32` is true
    /// for 16/32-bit displacement forms (`E8`, `E9`, `0F 8x`), false for
    /// the short `rel8` forms.
    RelBranch {
        /// Primary opcode byte (the second byte for `0F`-escaped forms).
        opcode: u8,
        /// Destination as an offset into the decoded buffer.
        target: i64,
        /// Wide-displacement form (`rel16`/`rel32`), not `rel8`.
        rel32: bool,
    },
    /// `RET`/`RETF`/`IRET` family.
    Ret,
    /// `FF /2` (`CALL rm`) or `FF /4` (`JMP rm`): control transfer through
    /// a register or memory operand. `call` distinguishes the two (a call
    /// falls through, a jump does not). `slot` is the buffer offset of the
    /// 4-byte displacement for the `[disp32]` addressing form (`FF 15` /
    /// `FF 25`) — the form that reads a pointer table such as the IAT —
    /// and `None` for every other operand shape.
    IndirectBranch {
        /// `CALL rm` (true) vs `JMP rm` (false).
        call: bool,
        /// Offset of the `disp32` bytes for the `[disp32]` form.
        slot: Option<usize>,
    },
    /// Any other successfully length-decoded instruction.
    Other,
    /// Opcode outside the implemented maps; length is 1 byte (resync).
    Unknown,
}

/// One decoded instruction.
#[derive(Clone, Debug)]
pub struct Instruction {
    /// Offset of the first byte (prefixes included) in the buffer.
    pub offset: usize,
    /// Total encoded length in bytes.
    pub len: usize,
    /// Coarse classification.
    pub kind: Kind,
}

impl Instruction {
    /// Offset of the byte after this instruction.
    pub fn end(&self) -> usize {
        self.offset + self.len
    }
}

/// Immediate-operand class of an opcode.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Imm {
    /// No immediate.
    None,
    /// 1 byte.
    B1,
    /// 2 bytes (e.g. `RET imm16`).
    B2,
    /// 3 bytes (`ENTER imm16, imm8`).
    B3,
    /// Word-or-dword by operand size (the spec's *z*): 2 with a `66`
    /// prefix, else 4.
    Z,
    /// Full-width (*v*): like `Z`, but 8 bytes under REX.W (`MOV r64,
    /// imm64` is the one GPR instruction with a 64-bit immediate).
    V,
    /// Absolute memory offset (`MOV AL/eAX, moffs`): sized by *address*
    /// size — 8 in 64-bit mode, else 4, halved by a `67` prefix.
    Moffs,
    /// Far pointer `ptr16:16/32` (`CALL`/`JMP` far): 2 + operand size.
    Far,
}

/// Per-opcode decode recipe.
#[derive(Clone, Copy, Debug)]
struct OpSpec {
    modrm: bool,
    imm: Imm,
}

const fn spec(modrm: bool, imm: Imm) -> OpSpec {
    OpSpec { modrm, imm }
}

/// Decodes the instruction at `offset`. Returns `None` only when `offset`
/// is at or past the end of the buffer; truncated tails decode as
/// [`Kind::Unknown`] spanning the remaining bytes so sweeps terminate.
pub fn decode(buf: &[u8], offset: usize, mode: Mode) -> Option<Instruction> {
    if offset >= buf.len() {
        return None;
    }
    let unknown = |len: usize| Instruction {
        offset,
        len: len.max(1).min(buf.len() - offset),
        kind: Kind::Unknown,
    };

    let mut at = offset;
    let mut opsize16 = false;
    let mut addrsize = false;
    let mut rex_w = false;

    // Legacy prefixes (order-free, may repeat); cap at the architectural
    // 15-byte instruction limit.
    while at < buf.len() && at - offset < 14 {
        match buf[at] {
            0x66 => opsize16 = true,
            0x67 => addrsize = true,
            0xF0 | 0xF2 | 0xF3 | 0x2E | 0x36 | 0x3E | 0x26 | 0x64 | 0x65 => {}
            _ => break,
        }
        at += 1;
    }
    // REX (64-bit mode only; must be the last prefix before the opcode).
    if mode == Mode::Bits64 {
        while at < buf.len() && (0x40..=0x4F).contains(&buf[at]) {
            rex_w = buf[at] & 0x08 != 0;
            at += 1;
            if at - offset >= 14 {
                return Some(unknown(at - offset));
            }
        }
    }
    if at >= buf.len() {
        return Some(unknown(at - offset));
    }

    let opcode = buf[at];
    at += 1;

    // Two-byte map.
    if opcode == 0x0F {
        if at >= buf.len() {
            return Some(unknown(at - offset));
        }
        let op2 = buf[at];
        at += 1;
        let Some(sp) = two_byte_spec(op2) else {
            return Some(unknown(at - offset));
        };
        let Some(end) = finish(buf, offset, at, sp, mode, opsize16, addrsize, rex_w) else {
            return Some(unknown(buf.len() - offset));
        };
        let len = end - offset;
        let kind = if (0x80..=0x8F).contains(&op2) {
            rel_branch(buf, offset, len, op2, true, opsize16)
        } else {
            Kind::Other
        };
        return Some(Instruction { offset, len, kind });
    }

    let Some(sp) = one_byte_spec(opcode, mode, buf, at) else {
        return Some(unknown(at - offset));
    };
    let Some(end) = finish(buf, offset, at, sp, mode, opsize16, addrsize, rex_w) else {
        return Some(unknown(buf.len() - offset));
    };
    let len = end - offset;
    let kind = classify(buf, offset, len, opcode, opsize16, at);
    Some(Instruction { offset, len, kind })
}

/// Computes the final length: ModRM/SIB/displacement, then the immediate.
/// Returns `None` if the instruction is truncated by the end of the buffer.
#[allow(clippy::too_many_arguments)]
fn finish(
    buf: &[u8],
    start: usize,
    mut at: usize,
    sp: OpSpec,
    mode: Mode,
    opsize16: bool,
    addrsize: bool,
    rex_w: bool,
) -> Option<usize> {
    if sp.modrm {
        let modrm = *buf.get(at)?;
        at += 1;
        let md = modrm >> 6;
        let rm = modrm & 7;
        if md != 3 {
            if mode == Mode::Bits32 && addrsize {
                // 16-bit addressing: no SIB; disp16 for mod=2 or mod=0/rm=6.
                match (md, rm) {
                    (0, 6) | (2, _) => at += 2,
                    (1, _) => at += 1,
                    _ => {}
                }
            } else {
                if rm == 4 {
                    let sib = *buf.get(at)?;
                    at += 1;
                    if md == 0 && sib & 7 == 5 {
                        at += 4;
                    }
                }
                match (md, rm) {
                    (0, 5) => at += 4, // disp32 (RIP-relative in 64-bit)
                    (1, _) => at += 1,
                    (2, _) => at += 4,
                    _ => {}
                }
            }
        }
    }
    let word = if opsize16 { 2 } else { 4 };
    at += match sp.imm {
        Imm::None => 0,
        Imm::B1 => 1,
        Imm::B2 => 2,
        Imm::B3 => 3,
        Imm::Z => word,
        Imm::V => {
            if rex_w {
                8
            } else {
                word
            }
        }
        Imm::Moffs => match (mode, addrsize) {
            (Mode::Bits64, false) => 8,
            (Mode::Bits64, true) | (Mode::Bits32, false) => 4,
            (Mode::Bits32, true) => 2,
        },
        Imm::Far => 2 + word,
    };
    if at > buf.len() || at - start > 15 {
        return None;
    }
    Some(at)
}

/// Classifies a one-byte-map instruction once its length is known.
/// `modrm_at` is the buffer offset of the ModRM byte (the byte after the
/// opcode), needed to resolve the `FF` group's reg-field selector.
fn classify(
    buf: &[u8],
    offset: usize,
    len: usize,
    opcode: u8,
    opsize16: bool,
    modrm_at: usize,
) -> Kind {
    match opcode {
        0x70..=0x7F | 0xE0..=0xE3 | 0xEB => rel_branch(buf, offset, len, opcode, false, opsize16),
        0xE8 | 0xE9 => rel_branch(buf, offset, len, opcode, true, opsize16),
        0xC2 | 0xC3 | 0xCA | 0xCB | 0xCF => Kind::Ret,
        0xFF => match buf.get(modrm_at).map(|m| (m >> 3) & 7) {
            Some(reg @ (2 | 4)) => {
                let m = buf[modrm_at];
                // `[disp32]` form: mod=0, rm=5 — no SIB, disp follows ModRM.
                let slot = (m >> 6 == 0 && m & 7 == 5).then_some(modrm_at + 1);
                Kind::IndirectBranch {
                    call: reg == 2,
                    slot,
                }
            }
            _ => Kind::Other,
        },
        _ => Kind::Other,
    }
}

/// Builds the `RelBranch` kind by reading the trailing displacement.
fn rel_branch(
    buf: &[u8],
    offset: usize,
    len: usize,
    opcode: u8,
    rel32: bool,
    opsize16: bool,
) -> Kind {
    let end = offset + len;
    let rel: i64 = if !rel32 {
        i64::from(buf[end - 1] as i8)
    } else if opsize16 {
        i64::from(i16::from_le_bytes([buf[end - 2], buf[end - 1]]))
    } else {
        i64::from(i32::from_le_bytes([
            buf[end - 4],
            buf[end - 3],
            buf[end - 2],
            buf[end - 1],
        ]))
    };
    Kind::RelBranch {
        opcode,
        target: end as i64 + rel,
        rel32,
    }
}

/// One-byte opcode map. `None` marks opcodes left out of the implemented
/// grammar (including mode-invalid ones), which decode as `Unknown`.
fn one_byte_spec(opcode: u8, mode: Mode, buf: &[u8], at: usize) -> Option<OpSpec> {
    let m64 = mode == Mode::Bits64;
    Some(match opcode {
        // ALU block: op rm,r / op r,rm / op AL,imm8 / op eAX,immz, with
        // segment push/pop (invalid in 64-bit) on the 06/07-style slots.
        0x00..=0x3F => match opcode & 7 {
            0..=3 => spec(true, Imm::None),
            4 => spec(false, Imm::B1),
            5 => spec(false, Imm::Z),
            _ => {
                // 06/07/0E/16/17/1E/1F push/pop seg; 27/2F/37/3F BCD ops.
                // 0F is the two-byte escape, handled by the caller.
                if m64 {
                    return None;
                }
                spec(false, Imm::None)
            }
        },
        // INC/DEC r32 (32-bit); REX prefixes in 64-bit (consumed earlier,
        // so reaching here as an opcode is impossible in Bits64).
        0x40..=0x4F => spec(false, Imm::None),
        0x50..=0x5F => spec(false, Imm::None), // PUSH/POP r
        0x60 | 0x61 => {
            // PUSHA/POPA — invalid in 64-bit mode.
            if m64 {
                return None;
            }
            spec(false, Imm::None)
        }
        0x62 => {
            if m64 {
                return None; // BOUND (EVEX prefix in 64-bit — unmodelled)
            }
            spec(true, Imm::None)
        }
        0x63 => spec(true, Imm::None),         // ARPL / MOVSXD
        0x68 => spec(false, Imm::Z),           // PUSH immz
        0x69 => spec(true, Imm::Z),            // IMUL r, rm, immz
        0x6A => spec(false, Imm::B1),          // PUSH imm8
        0x6B => spec(true, Imm::B1),           // IMUL r, rm, imm8
        0x6C..=0x6F => spec(false, Imm::None), // INS/OUTS
        0x70..=0x7F => spec(false, Imm::B1),   // Jcc rel8
        0x80 | 0x82 | 0x83 => {
            if opcode == 0x82 && m64 {
                return None;
            }
            spec(true, Imm::B1)
        }
        0x81 => spec(true, Imm::Z),
        0x84..=0x8F => spec(true, Imm::None), // TEST/XCHG/MOV/LEA/POP rm
        0x90..=0x97 => spec(false, Imm::None), // NOP/XCHG eAX, r
        0x98 | 0x99 => spec(false, Imm::None),
        0x9A => {
            if m64 {
                return None; // CALL far — invalid in 64-bit
            }
            spec(false, Imm::Far)
        }
        0x9B..=0x9F => spec(false, Imm::None),
        0xA0..=0xA3 => spec(false, Imm::Moffs), // MOV acc <-> [moffs]
        0xA4..=0xA7 => spec(false, Imm::None),  // MOVS/CMPS
        0xA8 => spec(false, Imm::B1),           // TEST AL, imm8
        0xA9 => spec(false, Imm::Z),            // TEST eAX, immz
        0xAA..=0xAF => spec(false, Imm::None),  // STOS/LODS/SCAS
        0xB0..=0xB7 => spec(false, Imm::B1),    // MOV r8, imm8
        0xB8..=0xBF => spec(false, Imm::V),     // MOV r, immv
        0xC0 | 0xC1 => spec(true, Imm::B1),     // shift rm, imm8
        0xC2 => spec(false, Imm::B2),           // RET imm16
        0xC3 => spec(false, Imm::None),         // RET
        0xC4 | 0xC5 => {
            if m64 {
                return None; // LES/LDS are VEX prefixes in 64-bit
            }
            spec(true, Imm::None)
        }
        0xC6 => spec(true, Imm::B1),           // MOV rm8, imm8
        0xC7 => spec(true, Imm::Z),            // MOV rm, immz
        0xC8 => spec(false, Imm::B3),          // ENTER imm16, imm8
        0xC9 => spec(false, Imm::None),        // LEAVE
        0xCA => spec(false, Imm::B2),          // RETF imm16
        0xCB | 0xCC => spec(false, Imm::None), // RETF / INT3
        0xCD => spec(false, Imm::B1),          // INT imm8
        0xCE => {
            if m64 {
                return None; // INTO
            }
            spec(false, Imm::None)
        }
        0xCF => spec(false, Imm::None),       // IRET
        0xD0..=0xD3 => spec(true, Imm::None), // shift rm, 1/CL
        0xD4 | 0xD5 => {
            if m64 {
                return None; // AAM/AAD
            }
            spec(false, Imm::B1)
        }
        0xD7 => spec(false, Imm::None),       // XLAT
        0xD8..=0xDF => spec(true, Imm::None), // x87 escapes
        0xE0..=0xE3 => spec(false, Imm::B1),  // LOOPcc/JCXZ rel8
        0xE4..=0xE7 => spec(false, Imm::B1),  // IN/OUT imm8
        0xE8 | 0xE9 => spec(false, Imm::Z),   // CALL/JMP relz
        0xEA => {
            if m64 {
                return None; // JMP far
            }
            spec(false, Imm::Far)
        }
        0xEB => spec(false, Imm::B1),                 // JMP rel8
        0xEC..=0xEF => spec(false, Imm::None),        // IN/OUT DX
        0xF1 | 0xF4 | 0xF5 => spec(false, Imm::None), // INT1/HLT/CMC
        0xF6 | 0xF7 => {
            // TEST rm, imm when the ModRM reg field selects /0 or /1.
            let has_imm = buf.get(at).is_some_and(|m| (m >> 3) & 7 <= 1);
            match (has_imm, opcode) {
                (false, _) => spec(true, Imm::None),
                (true, 0xF6) => spec(true, Imm::B1),
                (true, _) => spec(true, Imm::Z),
            }
        }
        0xF8..=0xFD => spec(false, Imm::None), // CLC..STD
        0xFE | 0xFF => spec(true, Imm::None),  // INC/DEC/CALL/JMP/PUSH rm
        // 0x26/2E/36/3E/64/65/66/67/F0/F2/F3 are prefixes (consumed
        // earlier); 0xD6 (SALC) and anything else: unmodelled.
        _ => return None,
    })
}

/// Two-byte (`0F`-escaped) opcode map — the common subset.
fn two_byte_spec(op2: u8) -> Option<OpSpec> {
    Some(match op2 {
        0x05 | 0x06 | 0x08 | 0x09 | 0x0B => spec(false, Imm::None), // SYSCALL/CLTS/INVD/WBINVD/UD2
        0x1F => spec(true, Imm::None),                              // multi-byte NOP
        0x10..=0x17 => spec(true, Imm::None),                       // SSE moves
        0x28..=0x2F => spec(true, Imm::None),
        0x30..=0x33 => spec(false, Imm::None), // WRMSR/RDTSC/RDMSR/RDPMC
        0x40..=0x4F => spec(true, Imm::None),  // CMOVcc
        0x54..=0x57 => spec(true, Imm::None),  // logic (XORPS etc.)
        0x6E | 0x6F | 0x7E | 0x7F => spec(true, Imm::None), // MMX/SSE moves
        0x80..=0x8F => spec(false, Imm::Z),    // Jcc relz
        0x90..=0x9F => spec(true, Imm::None),  // SETcc
        0xA0 | 0xA1 | 0xA8 | 0xA9 => spec(false, Imm::None), // PUSH/POP FS/GS
        0xA2 => spec(false, Imm::None),        // CPUID
        0xA3 | 0xAB | 0xB3 | 0xBB => spec(true, Imm::None), // BT/BTS/BTR/BTC
        0xA4 | 0xAC => spec(true, Imm::B1),    // SHLD/SHRD imm8
        0xA5 | 0xAD => spec(true, Imm::None),
        0xAE => spec(true, Imm::None),        // fence/XSAVE group
        0xAF => spec(true, Imm::None),        // IMUL r, rm
        0xB0 | 0xB1 => spec(true, Imm::None), // CMPXCHG
        0xB6 | 0xB7 | 0xBE | 0xBF => spec(true, Imm::None), // MOVZX/MOVSX
        0xBA => spec(true, Imm::B1),          // BT group imm8
        0xC0 | 0xC1 => spec(true, Imm::None), // XADD
        0xC7 => spec(true, Imm::None),        // CMPXCHG8B
        0xC8..=0xCF => spec(false, Imm::None), // BSWAP
        _ => return None,
    })
}

/// Iterator running a linear sweep over a byte buffer.
#[derive(Debug)]
pub struct Sweep<'a> {
    buf: &'a [u8],
    at: usize,
    mode: Mode,
}

impl<'a> Sweep<'a> {
    /// Starts a sweep at offset 0.
    pub fn new(buf: &'a [u8], mode: Mode) -> Self {
        Sweep { buf, at: 0, mode }
    }
}

impl Iterator for Sweep<'_> {
    type Item = Instruction;

    fn next(&mut self) -> Option<Instruction> {
        let insn = decode(self.buf, self.at, self.mode)?;
        self.at = insn.end();
        Some(insn)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one(bytes: &[u8], mode: Mode) -> Instruction {
        decode(bytes, 0, mode).unwrap()
    }

    #[test]
    fn corpus_inventory_lengths() {
        // Every encoding the synthetic codegen emits, at its exact length.
        let cases: &[(&[u8], usize)] = &[
            (&[0x90], 1),                         // NOP
            (&[0x55], 1),                         // PUSH EBP
            (&[0x5D], 1),                         // POP EBP
            (&[0x89, 0xE5], 2),                   // MOV EBP, ESP
            (&[0x83, 0xEC, 0x20], 3),             // SUB ESP, 0x20
            (&[0x89, 0xEC], 2),                   // MOV ESP, EBP
            (&[0xC3], 1),                         // RET
            (&[0x49], 1),                         // DEC ECX
            (&[0xB8, 0x10, 0x00, 0x00, 0x00], 5), // MOV EAX, imm32
            (&[0x85, 0xC0], 2),                   // TEST EAX, EAX
            (&[0x74, 0x05], 2),                   // JZ rel8
            (&[0xA1, 0, 0, 0, 0], 5),             // MOV EAX, [moffs32]
            (&[0xA3, 0, 0, 0, 0], 5),             // MOV [moffs32], EAX
            (&[0xFF, 0x15, 0, 0, 0, 0], 6),       // CALL [abs32]
            (&[0x68, 0, 0, 0, 0], 5),             // PUSH imm32
        ];
        for (bytes, want) in cases {
            let insn = one(bytes, Mode::Bits32);
            assert_eq!(insn.len, *want, "length of {bytes:02X?}");
            assert_ne!(insn.kind, Kind::Unknown, "decodability of {bytes:02X?}");
        }
    }

    #[test]
    fn rel_branches_compute_targets() {
        // E9 rel32 forward.
        let i = one(&[0xE9, 0x10, 0x00, 0x00, 0x00], Mode::Bits32);
        assert_eq!(
            i.kind,
            Kind::RelBranch {
                opcode: 0xE9,
                target: 5 + 0x10,
                rel32: true
            }
        );
        // E8 rel32 backward.
        let i = one(&[0xE8, 0xFB, 0xFF, 0xFF, 0xFF], Mode::Bits32);
        assert_eq!(
            i.kind,
            Kind::RelBranch {
                opcode: 0xE8,
                target: 0,
                rel32: true
            }
        );
        // Jcc rel8.
        let i = one(&[0x75, 0xFE], Mode::Bits32);
        assert_eq!(
            i.kind,
            Kind::RelBranch {
                opcode: 0x75,
                target: 0,
                rel32: false
            }
        );
        // Two-byte Jcc rel32.
        let i = one(&[0x0F, 0x84, 0x00, 0x01, 0x00, 0x00], Mode::Bits32);
        assert_eq!(i.len, 6);
        assert_eq!(
            i.kind,
            Kind::RelBranch {
                opcode: 0x84,
                target: 6 + 0x100,
                rel32: true
            }
        );
    }

    #[test]
    fn ff_group_indirect_branches_classify() {
        // CALL [abs32] — the corpus's canonical import-call encoding: the
        // disp32 slot starts right after the ModRM byte.
        let i = one(&[0xFF, 0x15, 0x10, 0x20, 0x00, 0x00], Mode::Bits32);
        assert_eq!(i.len, 6);
        assert_eq!(
            i.kind,
            Kind::IndirectBranch {
                call: true,
                slot: Some(2)
            }
        );
        // JMP [abs32] — the IAT-pivot trampoline form.
        let i = one(&[0xFF, 0x25, 0, 0, 0, 0], Mode::Bits32);
        assert_eq!(
            i.kind,
            Kind::IndirectBranch {
                call: false,
                slot: Some(2)
            }
        );
        // CALL EAX — register operand, no readable slot.
        let i = one(&[0xFF, 0xD0], Mode::Bits32);
        assert_eq!(
            i.kind,
            Kind::IndirectBranch {
                call: true,
                slot: None
            }
        );
        // JMP [EAX+8] — memory operand but not [disp32].
        let i = one(&[0xFF, 0x60, 0x08], Mode::Bits32);
        assert_eq!(
            i.kind,
            Kind::IndirectBranch {
                call: false,
                slot: None
            }
        );
        // FF /0 (INC rm) stays Other.
        assert_eq!(one(&[0xFF, 0xC0], Mode::Bits32).kind, Kind::Other);
        // With an operand-size prefix the slot shifts by the prefix byte.
        let i = one(&[0x66, 0xFF, 0x15, 0, 0, 0, 0], Mode::Bits32);
        assert_eq!(
            i.kind,
            Kind::IndirectBranch {
                call: true,
                slot: Some(3)
            }
        );
    }

    #[test]
    fn mode_sensitivity_of_0x49() {
        // 32-bit: DEC ECX, standalone.
        let i = one(&[0x49, 0x90], Mode::Bits32);
        assert_eq!(i.len, 1);
        // 64-bit: REX.WB prefix fused with the following instruction.
        let i = one(&[0x49, 0x90], Mode::Bits64);
        assert_eq!(i.len, 2);
    }

    #[test]
    fn rex_w_widens_mov_imm() {
        // MOV RAX, imm64 — the W64 codegen's relocation carrier.
        let i = one(&[0x48, 0xB8, 1, 2, 3, 4, 5, 6, 7, 8], Mode::Bits64);
        assert_eq!(i.len, 10);
        assert_eq!(i.kind, Kind::Other);
        // Without REX.W it stays imm32.
        let i = one(&[0xB8, 1, 2, 3, 4], Mode::Bits64);
        assert_eq!(i.len, 5);
    }

    #[test]
    fn modrm_sib_disp_grammar() {
        let cases: &[(&[u8], usize)] = &[
            (&[0x89, 0x04, 0x24], 3),             // MOV [ESP], EAX (SIB)
            (&[0x89, 0x44, 0x24, 0x08], 4),       // MOV [ESP+8], EAX
            (&[0x89, 0x84, 0x24, 0, 1, 0, 0], 7), // MOV [ESP+disp32], EAX
            (&[0x89, 0x05, 0, 0, 0, 0], 6),       // MOV [disp32], EAX
            (&[0x89, 0x40, 0x04], 3),             // MOV [EAX+4], EAX
            (&[0x8B, 0x80, 0, 0, 0, 1], 6),       // MOV EAX, [EAX+disp32]
            (&[0x83, 0x3D, 0, 0, 0, 0, 0x01], 7), // CMP [disp32], imm8
            (&[0xC7, 0x00, 1, 2, 3, 4], 6),       // MOV [EAX], imm32
            (&[0xF7, 0x00, 1, 2, 3, 4], 6),       // TEST [EAX], imm32 (/0)
            (&[0xF7, 0xD8], 2),                   // NEG EAX (/3, no imm)
            (&[0x0F, 0x1F, 0x44, 0x00, 0x00], 5), // canonical 5-byte NOP
        ];
        for (bytes, want) in cases {
            assert_eq!(
                one(bytes, Mode::Bits32).len,
                *want,
                "length of {bytes:02X?}"
            );
        }
    }

    #[test]
    fn operand_size_prefix_shrinks_immz() {
        assert_eq!(one(&[0x66, 0xB8, 0x34, 0x12], Mode::Bits32).len, 4); // MOV AX, imm16
        assert_eq!(one(&[0xB8, 0x34, 0x12, 0, 0], Mode::Bits32).len, 5);
    }

    #[test]
    fn unknown_and_truncated_degrade_gracefully() {
        // 0xD6 (SALC) is unmodelled: 1-byte Unknown, sweep resyncs.
        let i = one(&[0xD6, 0x90], Mode::Bits32);
        assert_eq!((i.len, i.kind), (1, Kind::Unknown));
        // Truncated CALL rel32 at end of buffer: Unknown spanning the rest.
        let i = one(&[0xE8, 0x01], Mode::Bits32);
        assert_eq!(i.kind, Kind::Unknown);
        assert_eq!(i.end(), 2);
        // Empty buffer: None.
        assert!(decode(&[], 0, Mode::Bits32).is_none());
        // PUSHA valid in 32-bit, invalid in 64-bit.
        assert_eq!(one(&[0x60], Mode::Bits32).kind, Kind::Other);
        assert_eq!(one(&[0x60], Mode::Bits64).kind, Kind::Unknown);
    }

    #[test]
    fn sweep_stays_on_boundaries_through_caves() {
        // prologue, body, epilogue, 4-byte cave, next prologue.
        let mut text = Vec::new();
        text.extend([0x55, 0x89, 0xE5, 0x83, 0xEC, 0x20]); // prologue
        text.extend([0x90, 0x85, 0xC0]); // body
        text.extend([0x89, 0xEC, 0x5D, 0xC3]); // epilogue
        text.extend([0x00, 0x00, 0x00, 0x00]); // cave
        text.extend([0x55, 0x89, 0xE5, 0x83, 0xEC, 0x20]); // next prologue
        let boundaries: Vec<usize> = Sweep::new(&text, Mode::Bits32).map(|i| i.offset).collect();
        // The second prologue's PUSH EBP must be decoded exactly at its
        // offset — i.e. the zero cave (ADD [EAX], AL pairs) didn't desync.
        assert!(boundaries.contains(&17), "boundaries: {boundaries:?}");
        let total: usize = Sweep::new(&text, Mode::Bits32).map(|i| i.len).sum();
        assert_eq!(total, text.len());
    }
}
