//! Recursive-descent disassembly: a deterministic basic-block CFG per
//! captured image.
//!
//! The linear sweep (lints L2/L3) decodes every byte of an executable
//! section exactly once, in file order. That is exact for straight-line
//! code but is defeated by classic anti-disassembly tricks: a junk byte
//! after an unconditional jump desynchronizes the sweep, and the bytes the
//! attacker actually executes are never decoded at their real offsets.
//! This module decodes the image the way the CPU would: start from known
//! control-flow *roots* and follow the instruction stream, so the decoded
//! set is "what can execute", not "what the file order suggests".
//!
//! ## Roots
//!
//! * `AddressOfEntryPoint`, when non-zero and inside an executable section
//!   (the corpus builder leaves it 0 for drivers; real modules set it);
//! * every RVA in the export directory's `AddressOfFunctions` array;
//! * every *relocated function pointer*: a base-relocation slot whose
//!   relocated value, rebased to an RVA, lands in an executable section on
//!   the corpus's canonical 6-byte function prologue. These are the
//!   dispatch-table entries an indirect `CALL`/`JMP` reads — the transfer
//!   targets a sweep can never see.
//!
//! ## Traversal
//!
//! From each root the stream is decoded forward. Unconditional transfers
//! (`JMP rel8/rel32`) end the stream and enqueue their target; `CALL
//! rel32` enqueues its target and falls through; `RET`, undecodable
//! opcodes, indirect `JMP`s and the section end terminate. Conditional
//! branch targets are *not* followed: the synthetic corpus emits `Jcc
//! rel8` forms whose displacements are opaque profile bytes, not real
//! control flow, and following them would decode deliberately meaningless
//! streams. (Both taken and not-taken paths of real compiler output are
//! reachable via fall-through from the roots anyway.)
//!
//! ## Determinism
//!
//! Every collection here is ordered (`BTreeMap`/`BTreeSet`/sorted `Vec`),
//! the worklist is drained in ascending offset order, and no host pointer
//! or hash-map iteration order ever influences the result — two analyses
//! of the same bytes produce byte-identical reports, which the fleet
//! scheduler's bucket-level replication relies on.

use std::collections::{BTreeMap, BTreeSet};

use mc_pe::consts::DIR_BASERELOC;
use mc_pe::parser::ParsedModule;
use mc_pe::reloc::parse_reloc_section;
use mc_pe::AddressWidth;

use crate::decoder::{decode, Kind, Mode, Sweep};

/// The corpus codegen's fixed function prologue
/// (`PUSH EBP; MOV EBP, ESP; SUB ESP, 0x20`).
pub const PROLOGUE: [u8; 6] = [0x55, 0x89, 0xE5, 0x83, 0xEC, 0x20];
/// The matching epilogue (`MOV ESP, EBP; POP EBP; RET`).
pub const EPILOGUE: [u8; 4] = [0x89, 0xEC, 0x5D, 0xC3];

/// Why an RVA was used to seed the traversal.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum RootKind {
    /// `AddressOfEntryPoint`.
    EntryPoint,
    /// Export directory function RVA.
    Export,
    /// Base-relocation slot value that points at a function prologue.
    RelocatedPointer,
}

/// Recursive-descent result for one executable section.
#[derive(Clone, Debug)]
pub struct SectionCfg {
    /// Index of the section within [`ParsedModule::sections`].
    pub section: usize,
    /// Reachable instructions: section-local offset → (length, kind).
    pub insns: BTreeMap<usize, (usize, Kind)>,
    /// Instruction-start offsets of the *linear sweep* over the same
    /// bytes — the comparison set for the sweep-vs-CFG disagreement lint.
    pub sweep_boundaries: BTreeSet<usize>,
    /// Function spans `[start, end)` delimited by the corpus
    /// prologue/epilogue byte patterns, merged into disjoint intervals.
    pub function_spans: Vec<(usize, usize)>,
}

/// A deterministic control-flow graph over one captured module image.
#[derive(Clone, Debug)]
pub struct Cfg {
    /// Traversal roots as (RVA, kind), sorted and deduplicated.
    pub roots: Vec<(u32, RootKind)>,
    /// Per-executable-section results, in section-table order.
    pub sections: Vec<SectionCfg>,
    /// Total instructions decoded by the traversal (sweep excluded).
    pub instructions: usize,
}

impl Cfg {
    /// Builds the CFG for a parsed memory capture loaded at `base`.
    ///
    /// Never fails: malformed directories degrade to fewer roots, and an
    /// image with no roots yields an empty (but still valid) graph.
    pub fn build(p: &ParsedModule, base: u64, image: &[u8], mode: Mode) -> Cfg {
        let mut roots: Vec<(u32, RootKind)> = Vec::new();
        if let Some(ep) = p.entry_point(image).filter(|&ep| ep != 0) {
            roots.push((ep, RootKind::EntryPoint));
        }
        for rva in p.export_function_rvas(image) {
            roots.push((rva, RootKind::Export));
        }
        roots.extend(
            relocated_prologue_targets(p, base, image)
                .into_iter()
                .map(|rva| (rva, RootKind::RelocatedPointer)),
        );
        roots.sort_unstable();
        roots.dedup_by_key(|r| r.0);

        let mut sections = Vec::new();
        let mut instructions = 0usize;
        for (index, sec) in p.sections.iter().enumerate() {
            if !sec.is_executable() {
                continue;
            }
            let Some(data) = image.get(sec.data_range.clone()) else {
                continue;
            };
            let mut scfg = SectionCfg {
                section: index,
                insns: BTreeMap::new(),
                sweep_boundaries: Sweep::new(data, mode).map(|i| i.offset).collect(),
                function_spans: function_spans(data),
            };
            // Worklist of pending stream starts, drained in ascending
            // order for determinism.
            let mut pending: BTreeSet<usize> = roots
                .iter()
                .filter_map(|&(rva, _)| {
                    let local = rva.checked_sub(sec.virtual_address)? as usize;
                    (local < data.len()).then_some(local)
                })
                .collect();
            while let Some(start) = pending.pop_first() {
                instructions += walk_stream(data, start, mode, &mut scfg.insns, &mut pending);
            }
            sections.push(scfg);
        }
        Cfg {
            roots,
            sections,
            instructions,
        }
    }

    /// The section CFG covering `section_index`, if executable.
    pub fn section(&self, section_index: usize) -> Option<&SectionCfg> {
        self.sections.iter().find(|s| s.section == section_index)
    }
}

/// Decodes one stream starting at `start`, recording instructions until a
/// terminator. Branch targets worth following are added to `pending`.
/// Returns the number of newly recorded instructions.
fn walk_stream(
    data: &[u8],
    start: usize,
    mode: Mode,
    insns: &mut BTreeMap<usize, (usize, Kind)>,
    pending: &mut BTreeSet<usize>,
) -> usize {
    let mut at = start;
    let mut recorded = 0usize;
    loop {
        if insns.contains_key(&at) {
            return recorded; // joined an already-decoded stream
        }
        let Some(insn) = decode(data, at, mode) else {
            return recorded; // ran off the section end
        };
        insns.insert(at, (insn.len, insn.kind.clone()));
        recorded += 1;
        match insn.kind {
            Kind::Ret | Kind::Unknown => return recorded,
            Kind::RelBranch { opcode, target, .. } => {
                // The unconditional transfers (and only those) are real
                // control flow in this profile; see the module docs.
                let unconditional = matches!(opcode, 0xE9 | 0xEB);
                let follow = unconditional || opcode == 0xE8;
                if follow {
                    if let Ok(t) = usize::try_from(target) {
                        if t < data.len() && !insns.contains_key(&t) {
                            pending.insert(t);
                        }
                    }
                }
                if unconditional {
                    return recorded;
                }
            }
            Kind::IndirectBranch { call: false, .. } => return recorded,
            _ => {}
        }
        at = insn.end();
    }
}

/// Base-relocation slot values that, rebased to RVAs, point at a function
/// prologue inside an executable section. Malformed relocation data yields
/// an empty list rather than an error.
fn relocated_prologue_targets(p: &ParsedModule, base: u64, image: &[u8]) -> Vec<u32> {
    const MAX_SLOTS: usize = 1 << 16;

    let mut out = Vec::new();
    let Some((dir_rva, dir_size)) = p.data_directory(image, DIR_BASERELOC) else {
        return out;
    };
    if dir_rva == 0 || dir_size == 0 {
        return out;
    }
    let Some(dir_off) = p.rva_to_offset(dir_rva) else {
        return out;
    };
    let Some(reloc_bytes) = image.get(dir_off..dir_off.saturating_add(dir_size as usize)) else {
        return out;
    };
    let Some(slot_rvas) = parse_reloc_section(reloc_bytes) else {
        return out;
    };
    let slot_len = p.width.bytes();
    for slot_rva in slot_rvas.into_iter().take(MAX_SLOTS) {
        let Some(off) = p.rva_to_offset(slot_rva) else {
            continue;
        };
        let Some(bytes) = image.get(off..off + slot_len) else {
            continue;
        };
        let value = match p.width {
            AddressWidth::W32 => u64::from(u32::from_le_bytes(bytes.try_into().unwrap())),
            AddressWidth::W64 => u64::from_le_bytes(bytes.try_into().unwrap()),
        };
        // The loader wrote `RVA + base` into the slot; undo the rebase.
        let target = value.wrapping_sub(base);
        let Ok(target) = u32::try_from(target) else {
            continue;
        };
        let points_at_prologue = p.sections.iter().any(|s| {
            s.is_executable()
                && target >= s.virtual_address
                && image
                    .get(s.data_range.clone())
                    .and_then(|d| {
                        let local = (target - s.virtual_address) as usize;
                        d.get(local..local + PROLOGUE.len())
                    })
                    .is_some_and(|w| w == PROLOGUE)
        });
        if points_at_prologue {
            out.push(target);
        }
    }
    out
}

/// Function spans `[start, end)`: each prologue occurrence through the end
/// of the first epilogue at or after it (or the section end), merged into
/// disjoint ascending intervals.
fn function_spans(data: &[u8]) -> Vec<(usize, usize)> {
    let mut spans: Vec<(usize, usize)> = Vec::new();
    if data.len() < PROLOGUE.len() {
        return spans;
    }
    let mut epilogue_from = 0usize;
    for start in 0..=data.len() - PROLOGUE.len() {
        if data[start..start + PROLOGUE.len()] != PROLOGUE {
            continue;
        }
        // Epilogue search never needs to restart behind the previous
        // span's end: spans are processed in ascending start order.
        let from = epilogue_from.max(start);
        let end = data[from..]
            .windows(EPILOGUE.len())
            .position(|w| w == EPILOGUE)
            .map_or(data.len(), |pos| from + pos + EPILOGUE.len());
        epilogue_from = end;
        match spans.last_mut() {
            Some(last) if start <= last.1 => last.1 = last.1.max(end),
            _ => spans.push((start, end)),
        }
    }
    spans
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_pe::builder::{PeBuilder, SectionSpec};
    use mc_pe::consts::TEXT_CHARACTERISTICS;
    use mc_pe::corpus::ModuleBlueprint;

    /// Builds a file image and re-parses it as memory layout is not
    /// possible directly; instead parse the *file* layout and treat file
    /// offsets as the data ranges — sufficient for CFG-over-bytes tests.
    fn parsed_file(bytes: &[u8]) -> ParsedModule {
        ParsedModule::parse_file(bytes).unwrap()
    }

    #[test]
    fn clean_corpus_cfg_matches_the_sweep_on_reachable_code() {
        let bp = ModuleBlueprint::new("hal.dll", AddressWidth::W32, 32 * 1024)
            .with_exports(&["HalInitSystem", "HalReturnToFirmware"]);
        let pe = bp.build().unwrap();
        let p = parsed_file(pe.bytes());
        let cfg = Cfg::build(&p, 0, pe.bytes(), Mode::Bits32);
        assert!(!cfg.roots.is_empty(), "exports + reloc targets seed roots");
        let text = cfg.sections.first().expect(".text has a CFG");
        assert!(cfg.instructions > 50, "traversal really ran");
        // Every reachable instruction sits on a linear-sweep boundary: the
        // clean corpus contains no anti-disassembly constructs.
        for (&off, _) in &text.insns {
            assert!(
                text.sweep_boundaries.contains(&off),
                "clean CFG offset {off:#x} disagrees with the sweep"
            );
        }
        // No overlap either.
        let mut max_end = 0usize;
        for (&off, &(len, _)) in &text.insns {
            assert!(off >= max_end, "overlapping decode in clean code");
            max_end = off + len;
        }
    }

    #[test]
    fn cfg_is_deterministic() {
        let bp =
            ModuleBlueprint::new("ntfs.sys", AddressWidth::W32, 16 * 1024).with_exports(&["NtfsA"]);
        let pe = bp.build().unwrap();
        let p = parsed_file(pe.bytes());
        let a = Cfg::build(&p, 0, pe.bytes(), Mode::Bits32);
        let b = Cfg::build(&p, 0, pe.bytes(), Mode::Bits32);
        assert_eq!(a.roots, b.roots);
        assert_eq!(a.instructions, b.instructions);
        for (sa, sb) in a.sections.iter().zip(&b.sections) {
            assert_eq!(sa.insns, sb.insns);
            assert_eq!(sa.function_spans, sb.function_spans);
        }
    }

    #[test]
    fn unconditional_jump_targets_are_followed() {
        // .text: JMP +3 over junk, then NOP NOP RET at the target.
        let text = vec![0xEB, 0x03, 0xCC, 0xCC, 0xCC, 0x90, 0x90, 0xC3];
        let mut b = PeBuilder::new(AddressWidth::W32).entry_point(0x1000);
        let t = b.add_section(SectionSpec::new(".text", TEXT_CHARACTERISTICS, text));
        b.add_reloc_sites(t, [2u32]); // keep a .reloc so the build is typical
        let pe = b.build().unwrap();
        let p = parsed_file(pe.bytes());
        let cfg = Cfg::build(&p, 0, pe.bytes(), Mode::Bits32);
        let s = &cfg.sections[0];
        assert!(s.insns.contains_key(&0), "root instruction decoded");
        assert!(s.insns.contains_key(&5), "jump target followed");
        assert!(
            !s.insns.contains_key(&2),
            "junk after the unconditional jump is not fall-through"
        );
    }

    #[test]
    fn streams_stop_at_visited_offsets_and_self_loops() {
        // JMP -2 (self loop) must terminate.
        let text = vec![0xEB, 0xFE, 0xC3];
        let mut b = PeBuilder::new(AddressWidth::W32).entry_point(0x1000);
        b.add_section(SectionSpec::new(".text", TEXT_CHARACTERISTICS, text));
        let pe = b.build().unwrap();
        let p = parsed_file(pe.bytes());
        let cfg = Cfg::build(&p, 0, pe.bytes(), Mode::Bits32);
        assert_eq!(cfg.instructions, 1);
    }

    #[test]
    fn function_spans_merge_and_cover_bodies() {
        let mut data = Vec::new();
        data.extend(PROLOGUE);
        data.extend([0x90, 0x90]);
        data.extend(EPILOGUE);
        data.extend([0u8; 8]); // cave
        data.extend(PROLOGUE);
        data.extend(EPILOGUE);
        let spans = function_spans(&data);
        assert_eq!(spans, vec![(0, 12), (20, 30)]);
        // A prologue with no epilogue spans to the end (conservative).
        let spans = function_spans(&PROLOGUE);
        assert_eq!(spans, vec![(0, PROLOGUE.len())]);
    }

    #[test]
    fn garbage_images_never_panic_cfg_construction() {
        // A parseable header with hostile section bytes must degrade, not
        // panic: decode everything reachable and stop.
        let text: Vec<u8> = (0..512u32).map(|i| (i * 37 + 11) as u8).collect();
        let mut b = PeBuilder::new(AddressWidth::W32).entry_point(0x1000);
        b.add_section(SectionSpec::new(".text", TEXT_CHARACTERISTICS, text));
        let pe = b.build().unwrap();
        let p = parsed_file(pe.bytes());
        let _ = Cfg::build(&p, 0, pe.bytes(), Mode::Bits32);
        let _ = Cfg::build(&p, 0xFFFF_FFFF_0000_0000, pe.bytes(), Mode::Bits64);
    }
}
