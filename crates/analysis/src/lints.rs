//! Image lints L1–L4: everything decidable from one captured module image.
//!
//! The lints lean on two kinds of ground truth. *Invariants* hold for any
//! well-formed driver (sections don't overlap, the MSVC DOS stub carries its
//! canonical message, entry points live in executable sections). *Profile
//! facts* hold for this corpus's clean codegen and for the large class of
//! real drivers it models: inter-function caves are zero, kernel modules
//! import only the kernel and HAL, and intra-module calls go through
//! absolute indirect operands rather than `rel32` branches — so a bare
//! `E8`/`E9` is itself reportable, which is exactly the inline-hook
//! trampoline idiom (paper §V.B.2, Figure 5).
//!
//! The CFG lints L6–L9 (see [`crate::cfg`]) close the sweep's classic
//! blind spots: hooks routed through pointer tables the sweep treats as
//! data (L6), payload the attacker never links into file order (L7), and
//! streams deliberately desynchronized from file order (L8/L9).

use mc_pe::consts::{DIR_IMPORT, DOS_HEADER_SIZE, DOS_STUB_MESSAGE};
use mc_pe::parser::{ParsedModule, SectionView};
use mc_pe::AddressWidth;

use crate::cfg::{Cfg, SectionCfg};
use crate::decoder::{decode, Kind, Mode, Sweep};
use crate::{AnalyzerConfig, Confidence, Diagnostic, Lint, Severity};

/// The fixed function prologue the clean codegen emits (`PUSH EBP; MOV
/// EBP, ESP`). Used to delimit inter-function caves.
const PROLOGUE: [u8; 3] = [0x55, 0x89, 0xE5];

/// Scan statistics for the report.
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct ImageStats {
    pub instructions: usize,
    pub bytes: usize,
}

/// Runs L1–L4 and returns unsorted findings plus scan statistics.
pub(crate) fn run(
    p: &ParsedModule,
    base: u64,
    image: &[u8],
    cfg: &AnalyzerConfig,
) -> (Vec<Diagnostic>, ImageStats) {
    let mode = match p.width {
        AddressWidth::W32 => Mode::Bits32,
        AddressWidth::W64 => Mode::Bits64,
    };
    let mut out = Vec::new();
    let mut stats = ImageStats::default();

    // The linear sweep is exact for the 32-bit profile. On x86-64 a sweep
    // needs function metadata (unwind info) to stay synchronized — and this
    // corpus's W64 codegen additionally embeds `0x49` literals that are REX
    // prefixes in long mode — so L2/L3 stay opt-in there (see
    // `AnalyzerConfig::sweep_64bit`). L1/L4/L5 and the raw-byte slack lint
    // are width-universal.
    let sweep = mode == Mode::Bits32 || cfg.sweep_64bit;
    lint_entry_redirects(p, base, image, mode, &mut out);
    for sec in p.sections.iter().filter(|s| s.is_executable()) {
        let Some(data) = image.get(sec.data_range.clone()) else {
            continue;
        };
        if sweep {
            sweep_section(p, sec, data, base, mode, &mut out, &mut stats);
        }
        lint_section_slack(p, sec, base, image, &mut out);
    }
    lint_pe_structure(p, base, image, cfg, &mut out);

    // The CFG lints. L6 is decode-free and L7 anchors on function spans +
    // reachability, so both are sound on either width; L8/L9 compare the
    // CFG against the linear sweep and share its gating.
    if cfg.cfg_lints {
        let graph = Cfg::build(p, base, image, mode);
        stats.instructions += graph.instructions;
        lint_import_integrity(p, base, image, &mut out);
        for scfg in &graph.sections {
            let sec = &p.sections[scfg.section];
            let Some(data) = image.get(sec.data_range.clone()) else {
                continue;
            };
            if !sweep {
                stats.bytes += data.len();
            }
            lint_unreachable_code(sec, data, base, scfg, &mut out);
            if sweep {
                lint_hidden_transfers(p, sec, scfg, base, &mut out);
                lint_overlapping_decodes(sec, scfg, base, &mut out);
            }
        }
    }
    (out, stats)
}

/// L1 — does any entry point (AddressOfEntryPoint or exported function)
/// begin with a control transfer instead of a function body?
fn lint_entry_redirects(
    p: &ParsedModule,
    base: u64,
    image: &[u8],
    mode: Mode,
    out: &mut Vec<Diagnostic>,
) {
    let mut candidates: Vec<(u32, &'static str)> = Vec::new();
    // The corpus builder leaves AddressOfEntryPoint at 0 for drivers; 0
    // means "unset", never "entry at the DOS header".
    if let Some(ep) = p.entry_point(image).filter(|&ep| ep != 0) {
        candidates.push((ep, "AddressOfEntryPoint"));
    }
    for rva in p.export_function_rvas(image) {
        candidates.push((rva, "exported function"));
    }

    for (rva, what) in candidates {
        let Some(sec) = p.sections.iter().filter(|s| s.is_executable()).find(|s| {
            rva >= s.virtual_address && rva - s.virtual_address < s.data_range.len() as u32
        }) else {
            out.push(Diagnostic {
                lint: Lint::PeStructure,
                severity: Severity::Critical,
                confidence: Confidence::High,
                va: base + u64::from(rva),
                detail: format!("{what} RVA {rva:#x} falls outside every executable section"),
            });
            continue;
        };
        let data = &image[sec.data_range.clone()];
        let local = (rva - sec.virtual_address) as usize;
        let Some(insn) = decode(data, local, mode) else {
            continue;
        };
        match insn.kind {
            Kind::RelBranch { opcode, target, .. } => {
                let target_va = base + u64::from(sec.virtual_address) + target.max(0) as u64;
                out.push(Diagnostic {
                    lint: Lint::EntryRedirect,
                    severity: Severity::Critical,
                    confidence: Confidence::High,
                    va: base + u64::from(rva),
                    detail: format!(
                        "{what} begins with a relative {} to {target_va:#x} instead of a \
                         function prologue — inline-hook redirection",
                        branch_mnemonic(opcode)
                    ),
                });
            }
            _ => {
                // PUSH imm32; RET — the other classic entry trampoline.
                if data.get(local) == Some(&0x68) && data.get(local + 5) == Some(&0xC3) {
                    out.push(Diagnostic {
                        lint: Lint::EntryRedirect,
                        severity: Severity::Critical,
                        confidence: Confidence::High,
                        va: base + u64::from(rva),
                        detail: format!("{what} begins with a PUSH imm32 / RET trampoline"),
                    });
                }
                // FF /4 or /5 — indirect JMP at the entry.
                if data.get(local) == Some(&0xFF)
                    && data
                        .get(local + 1)
                        .is_some_and(|m| matches!((m >> 3) & 7, 4 | 5))
                {
                    out.push(Diagnostic {
                        lint: Lint::EntryRedirect,
                        severity: Severity::Critical,
                        confidence: Confidence::High,
                        va: base + u64::from(rva),
                        detail: format!("{what} begins with an indirect JMP"),
                    });
                }
            }
        }
    }
}

/// L2 + L3 over one executable section in a single linear sweep.
fn sweep_section(
    p: &ParsedModule,
    sec: &SectionView,
    data: &[u8],
    base: u64,
    mode: Mode,
    out: &mut Vec<Diagnostic>,
    stats: &mut ImageStats,
) {
    let sec_va = u64::from(sec.virtual_address);
    let mut ret_ends: Vec<usize> = Vec::new();
    let mut unknown = 0usize;

    for insn in Sweep::new(data, mode) {
        stats.instructions += 1;
        match insn.kind {
            Kind::RelBranch {
                opcode,
                target,
                rel32: true,
            } => {
                let va = base + sec_va + insn.offset as u64;
                let target_rva = sec_va as i64 + target;
                let (severity, confidence, class) = if target_rva < 0
                    || target_rva >= i64::from(p.size_of_image)
                {
                    (
                        Severity::Critical,
                        Confidence::High,
                        "resolves outside the module image",
                    )
                } else if !p.sections.iter().any(|s| {
                    s.is_executable()
                        && target_rva >= i64::from(s.virtual_address)
                        && target_rva < i64::from(s.virtual_address) + s.data_range.len() as i64
                }) {
                    (
                        Severity::Critical,
                        Confidence::High,
                        "lands in a non-executable section",
                    )
                } else {
                    // In-image, executable target. Clean driver code in this
                    // profile transfers control through absolute indirect
                    // operands only; a rel32 branch is the hook idiom.
                    (
                        Severity::Warning,
                        Confidence::Medium,
                        "is absent from the clean driver profile (absolute indirect transfers only) — consistent with a hook trampoline",
                    )
                };
                let target_va = (base as i64 + target_rva) as u64;
                out.push(Diagnostic {
                    lint: Lint::EscapingTransfer,
                    severity,
                    confidence,
                    va,
                    detail: format!(
                        "{} rel32 to {target_va:#x} {class}",
                        branch_mnemonic(opcode)
                    ),
                });
            }
            Kind::Ret => ret_ends.push(insn.end()),
            Kind::Unknown => unknown += 1,
            _ => {}
        }
    }
    stats.bytes += data.len();

    if unknown > 0 {
        out.push(Diagnostic {
            lint: Lint::EscapingTransfer,
            severity: Severity::Info,
            confidence: Confidence::Low,
            va: base + sec_va,
            detail: format!(
                "{unknown} undecodable opcode(s) in section {} — sweep resynchronized byte-wise",
                sec.name
            ),
        });
    }

    lint_caves(sec, data, base, &ret_ends, out);
}

/// L3 — inter-function caves. In clean code every gap between a `RET` and
/// the next function prologue is zero-filled; the inline hook parks its
/// payload, the displaced entry bytes and a back-jump exactly there.
fn lint_caves(
    sec: &SectionView,
    data: &[u8],
    base: u64,
    ret_ends: &[usize],
    out: &mut Vec<Diagnostic>,
) {
    // All prologue positions, one pass.
    let mut prologues: Vec<usize> = Vec::new();
    if data.len() >= PROLOGUE.len() {
        for i in 0..=data.len() - PROLOGUE.len() {
            if data[i..i + PROLOGUE.len()] == PROLOGUE {
                prologues.push(i);
            }
        }
    }

    for &gap_start in ret_ends {
        let gap_end = prologues
            .iter()
            .find(|&&pp| pp >= gap_start)
            .copied()
            .unwrap_or(data.len());
        let gap = &data[gap_start.min(data.len())..gap_end];
        let nonzero = gap.iter().filter(|&&b| b != 0).count();
        if nonzero == 0 {
            continue;
        }
        let first = gap_start + gap.iter().position(|&b| b != 0).unwrap_or(0);
        let preview: Vec<u8> = data[first..(first + 8).min(gap_end)].to_vec();
        out.push(Diagnostic {
            lint: Lint::CavePayload,
            severity: Severity::Critical,
            confidence: Confidence::Medium,
            va: base + u64::from(sec.virtual_address) + first as u64,
            detail: format!(
                "{nonzero} non-zero byte(s) in the opcode cave after the RET at \
                 {:#x} (starts {preview:02X?}) — executable payload outside any function",
                base + u64::from(sec.virtual_address) + gap_start as u64 - 1,
            ),
        });
    }
}

/// L3 (slack variant) — bytes between the end of an executable section's
/// declared data and the next section must be the loader's zero fill.
fn lint_section_slack(
    p: &ParsedModule,
    sec: &SectionView,
    base: u64,
    image: &[u8],
    out: &mut Vec<Diagnostic>,
) {
    let slack_start = sec.data_range.end;
    let slack_end = p
        .sections
        .iter()
        .map(|s| s.data_range.start)
        .filter(|&s| s >= slack_start)
        .min()
        .unwrap_or(image.len())
        .min(image.len());
    if slack_start >= slack_end {
        return;
    }
    let slack = &image[slack_start..slack_end];
    if let Some(pos) = slack.iter().position(|&b| b != 0) {
        out.push(Diagnostic {
            lint: Lint::CavePayload,
            severity: Severity::Critical,
            confidence: Confidence::High,
            va: base + (slack_start + pos) as u64,
            detail: format!(
                "non-zero byte(s) in the page slack after section {} — \
                 content hidden outside the hashed VirtualSize range",
                sec.name
            ),
        });
    }
}

/// L4 — PE structural invariants.
fn lint_pe_structure(
    p: &ParsedModule,
    base: u64,
    image: &[u8],
    cfg: &AnalyzerConfig,
    out: &mut Vec<Diagnostic>,
) {
    // DOS stub message. Every MSVC-linked driver carries the canonical
    // string; EXP-B3 rewrites three bytes of it.
    if p.e_lfanew as usize > DOS_HEADER_SIZE {
        let stub = &image[DOS_HEADER_SIZE..p.e_lfanew as usize];
        let intact = stub
            .windows(DOS_STUB_MESSAGE.len())
            .any(|w| w == DOS_STUB_MESSAGE);
        if !intact {
            out.push(Diagnostic {
                lint: Lint::PeStructure,
                severity: Severity::Critical,
                confidence: Confidence::High,
                va: base + DOS_HEADER_SIZE as u64,
                detail: "DOS stub does not carry the canonical \"This program cannot be \
                         run in DOS mode.\" message — stub modification"
                    .to_string(),
            });
        }
    }

    // Import allowlist. Kernel modules bind the kernel and the HAL; a
    // user-mode DLL in a driver's import table is the EXP-B4 signature.
    for dll in p.import_dlls(image) {
        if !cfg
            .import_allowlist
            .iter()
            .any(|ok| ok.eq_ignore_ascii_case(&dll))
        {
            out.push(Diagnostic {
                lint: Lint::PeStructure,
                severity: Severity::Critical,
                confidence: Confidence::High,
                va: base,
                detail: format!(
                    "import table references '{dll}', which is outside the kernel-module \
                     allowlist {:?}",
                    cfg.import_allowlist
                ),
            });
        }
    }

    // Section table geometry: ascending, disjoint, covered by SizeOfImage.
    for w in p.sections.windows(2) {
        let (a, b) = (&w[0], &w[1]);
        if b.virtual_address < a.virtual_address + a.virtual_size {
            out.push(Diagnostic {
                lint: Lint::PeStructure,
                severity: Severity::Critical,
                confidence: Confidence::High,
                va: base + u64::from(b.virtual_address),
                detail: format!(
                    "sections {} and {} overlap in virtual address space",
                    a.name, b.name
                ),
            });
        }
    }
    if let Some(last) = p.sections.last() {
        let end = u64::from(last.virtual_address) + u64::from(last.virtual_size);
        if end > u64::from(p.size_of_image) {
            out.push(Diagnostic {
                lint: Lint::PeStructure,
                severity: Severity::Critical,
                confidence: Confidence::High,
                va: base + u64::from(last.virtual_address),
                detail: format!(
                    "section {} extends to RVA {end:#x}, beyond SizeOfImage {:#x}",
                    last.name, p.size_of_image
                ),
            });
        }
    }
}

/// L6 — import-table integrity, decode-free. The loader in this profile
/// never rebinds imports: the IAT (`FirstThunk` array) must stay
/// byte-identical to the import name table (`OriginalFirstThunk` array) in
/// memory, so any divergent slot is a planted pointer — the address an
/// indirect `CALL`/`JMP [disp32]` through that slot actually dispatches to.
fn lint_import_integrity(p: &ParsedModule, base: u64, image: &[u8], out: &mut Vec<Diagnostic>) {
    const DESC_SIZE: usize = 20;
    const DESC_NAME: usize = 12;
    const DESC_FIRST_THUNK: usize = 16;
    const MAX_DESCRIPTORS: usize = 64;
    const MAX_THUNKS: usize = 4096;

    let Some((dir_rva, _)) = p.data_directory(image, DIR_IMPORT) else {
        return;
    };
    if dir_rva == 0 {
        return;
    }
    let Some(dir_off) = p.rva_to_offset(dir_rva) else {
        return;
    };
    let thunk = p.width.bytes();
    for i in 0..MAX_DESCRIPTORS {
        let at = dir_off + i * DESC_SIZE;
        let Some(name_rva) = read_u32_at(image, at + DESC_NAME) else {
            return;
        };
        if name_rva == 0 {
            return; // null terminator descriptor
        }
        let dll = import_dll_name(p, image, name_rva).unwrap_or_else(|| format!("descriptor {i}"));
        let (Some(oft_rva), Some(ft_rva)) = (
            read_u32_at(image, at),
            read_u32_at(image, at + DESC_FIRST_THUNK),
        ) else {
            return;
        };
        if oft_rva == 0 || ft_rva == 0 {
            continue; // legacy single-array layout: nothing to cross-check
        }
        let (Some(oft_off), Some(ft_off)) = (p.rva_to_offset(oft_rva), p.rva_to_offset(ft_rva))
        else {
            continue;
        };
        for j in 0..MAX_THUNKS {
            let expected = read_thunk(image, oft_off + j * thunk, p.width);
            let actual = read_thunk(image, ft_off + j * thunk, p.width);
            let (Some(expected), Some(actual)) = (expected, actual) else {
                break;
            };
            if expected == 0 || actual == 0 {
                if expected != actual {
                    out.push(Diagnostic {
                        lint: Lint::IndirectTransfer,
                        severity: Severity::Critical,
                        confidence: Confidence::High,
                        va: base + u64::from(ft_rva) + (j * thunk) as u64,
                        detail: format!(
                            "IAT for '{dll}' terminates at a different slot than its \
                             import name table — thunk array length forged"
                        ),
                    });
                }
                break;
            }
            if actual != expected {
                out.push(Diagnostic {
                    lint: Lint::IndirectTransfer,
                    severity: Severity::Critical,
                    confidence: Confidence::High,
                    va: base + u64::from(ft_rva) + (j * thunk) as u64,
                    detail: format!(
                        "IAT slot {j} for '{dll}' holds {actual:#x} where the import name \
                         table expects {expected:#x}{} — pointer-table hook: every indirect \
                         transfer through this slot dispatches to the planted address",
                        describe_iat_target(p, base, actual)
                    ),
                });
            }
        }
    }
}

/// Where a diverted IAT slot value actually points, for the L6 detail.
/// The value may be an RVA (file layout / unrelocated) or an absolute VA.
fn describe_iat_target(p: &ParsedModule, base: u64, value: u64) -> String {
    let rva = if value >= base && value - base < u64::from(p.size_of_image) {
        value - base
    } else if value < u64::from(p.size_of_image) {
        value
    } else {
        return ", resolving outside the module image".to_string();
    };
    match p.sections.iter().find(|s| {
        rva >= u64::from(s.virtual_address)
            && rva < u64::from(s.virtual_address) + s.data_range.len() as u64
    }) {
        Some(s) if s.is_executable() => format!(", redirected into section {}", s.name),
        Some(s) => format!(", redirected into non-executable section {}", s.name),
        None => ", resolving into the headers".to_string(),
    }
}

/// Null-terminated ASCII DLL name at `name_rva`, bounds-checked.
fn import_dll_name(p: &ParsedModule, image: &[u8], name_rva: u32) -> Option<String> {
    const MAX_NAME: usize = 256;
    let off = p.rva_to_offset(name_rva)?;
    let bytes = image.get(off..image.len().min(off + MAX_NAME))?;
    let len = bytes.iter().position(|&b| b == 0)?;
    let name = std::str::from_utf8(&bytes[..len]).ok()?;
    (!name.is_empty()).then(|| name.to_string())
}

fn read_u32_at(image: &[u8], off: usize) -> Option<u32> {
    image
        .get(off..off + 4)
        .map(|b| u32::from_le_bytes(b.try_into().unwrap()))
}

fn read_thunk(image: &[u8], off: usize, width: AddressWidth) -> Option<u64> {
    match width {
        AddressWidth::W32 => read_u32_at(image, off).map(u64::from),
        AddressWidth::W64 => image
            .get(off..off + 8)
            .map(|b| u64::from_le_bytes(b.try_into().unwrap())),
    }
}

/// L7 — non-zero executable bytes that are outside every function span
/// *and* unreachable from every CFG root. Subsumes L3's cave heuristic:
/// the cave lint needs the sweep to find the `RET`s, whereas this works
/// from raw byte patterns plus reachability, on either width.
fn lint_unreachable_code(
    sec: &SectionView,
    data: &[u8],
    base: u64,
    scfg: &SectionCfg,
    out: &mut Vec<Diagnostic>,
) {
    const MAX_REGIONS: usize = 4;

    // Covered intervals: function spans plus every reachable instruction.
    let mut intervals: Vec<(usize, usize)> = scfg.function_spans.clone();
    intervals.extend(scfg.insns.iter().map(|(&off, &(len, _))| (off, off + len)));
    intervals.sort_unstable();
    let mut merged: Vec<(usize, usize)> = Vec::new();
    for (s, e) in intervals {
        match merged.last_mut() {
            Some(last) if s <= last.1 => last.1 = last.1.max(e),
            _ => merged.push((s, e)),
        }
    }

    merged.push((data.len(), data.len()));
    let mut reported = 0usize;
    let mut cursor = 0usize;
    for (gap_end, next_cursor) in merged {
        let gap = &data[cursor.min(data.len())..gap_end.min(data.len())];
        let mut at = 0usize;
        while at < gap.len() && reported < MAX_REGIONS {
            if gap[at] == 0 {
                at += 1;
                continue;
            }
            let run_len = gap[at..].iter().take_while(|&&b| b != 0).count();
            let va = base + u64::from(sec.virtual_address) + (cursor + at) as u64;
            out.push(Diagnostic {
                lint: Lint::UnreachableCode,
                severity: Severity::Critical,
                confidence: Confidence::High,
                va,
                detail: format!(
                    "{run_len} non-zero byte(s) in section {} outside every function span \
                     and unreachable from all CFG roots — injected code",
                    sec.name
                ),
            });
            reported += 1;
            at += run_len;
        }
        cursor = next_cursor.max(cursor);
        if reported >= MAX_REGIONS {
            break;
        }
    }
}

/// L8 — sweep-vs-CFG disagreement on control flow: a `rel32` transfer the
/// CFG proves reachable but the linear sweep never decodes at that offset.
/// This is the junk-byte anti-disassembly signature: the attacker hides
/// the transfer inside the operand bytes of a sweep-visible instruction.
fn lint_hidden_transfers(
    p: &ParsedModule,
    sec: &SectionView,
    scfg: &SectionCfg,
    base: u64,
    out: &mut Vec<Diagnostic>,
) {
    let sec_va = u64::from(sec.virtual_address);
    for (&off, (_, kind)) in &scfg.insns {
        let Kind::RelBranch {
            opcode,
            target,
            rel32: true,
        } = *kind
        else {
            continue;
        };
        if scfg.sweep_boundaries.contains(&off) {
            continue;
        }
        let target_rva = sec_va as i64 + target;
        let target_va = (base as i64 + target_rva) as u64;
        let escapes = target_rva < 0 || target_rva >= i64::from(p.size_of_image);
        out.push(Diagnostic {
            lint: Lint::HiddenTransfer,
            severity: Severity::Critical,
            confidence: Confidence::High,
            va: base + sec_va + off as u64,
            detail: format!(
                "{} rel32 to {target_va:#x}{} is reachable through the CFG but never \
                 decoded by the linear sweep — anti-disassembly junk insertion",
                branch_mnemonic(opcode),
                if escapes {
                    " (outside the module image)"
                } else {
                    ""
                }
            ),
        });
    }
}

/// L9 — two CFG-reachable instructions decoding the same bytes at
/// different offsets: deliberate opcode aliasing. Clean code, even with
/// multiple entry points, always converges on one instruction stream.
fn lint_overlapping_decodes(
    sec: &SectionView,
    scfg: &SectionCfg,
    base: u64,
    out: &mut Vec<Diagnostic>,
) {
    const MAX_OVERLAPS: usize = 8;

    let sec_va = u64::from(sec.virtual_address);
    let mut max_end = 0usize;
    let mut owner = (0usize, 0usize); // (offset, len) of the instruction reaching max_end
    let mut reported = 0usize;
    for (&off, &(len, _)) in &scfg.insns {
        if off < max_end && reported < MAX_OVERLAPS {
            out.push(Diagnostic {
                lint: Lint::OverlappingDecode,
                severity: Severity::Critical,
                confidence: Confidence::High,
                va: base + sec_va + off as u64,
                detail: format!(
                    "reachable instruction at {:#x} begins inside the {}-byte reachable \
                     instruction at {:#x} — overlapping decode (opcode aliasing)",
                    base + sec_va + off as u64,
                    owner.1,
                    base + sec_va + owner.0 as u64,
                ),
            });
            reported += 1;
        }
        if off + len > max_end {
            max_end = off + len;
            owner = (off, len);
        }
    }
}

/// Mnemonic for a relative-branch opcode (one-byte map or `0F`-escaped).
fn branch_mnemonic(opcode: u8) -> &'static str {
    match opcode {
        0xE8 => "CALL",
        0xE9 | 0xEB => "JMP",
        _ => "Jcc",
    }
}
