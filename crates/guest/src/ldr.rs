//! `LDR_DATA_TABLE_ENTRY` / `UNICODE_STRING` byte encodings (Figure 2).
//!
//! The kernel tracks loaded modules in a circular doubly linked list headed
//! by `PsLoadedModuleList`. Each node is an `LDR_DATA_TABLE_ENTRY` whose
//! `InLoadOrderLinks` (`LIST_ENTRY { Flink, Blink }`) is the node's first
//! field, so a list pointer *is* an entry pointer. Field offsets below match
//! Windows XP SP2 (32-bit) and Server-2003-era 64-bit layouts — the offsets
//! an introspector must hard-code from OS profiles, exactly as libVMI does.

use mc_hypervisor::{AddressWidth, HvError, Vm};

/// Field offsets of `LDR_DATA_TABLE_ENTRY` for one pointer width.
#[derive(Clone, Copy, Debug)]
pub struct LdrOffsets {
    /// Pointer size in bytes.
    pub ptr: u64,
    /// `InLoadOrderLinks.Flink` (always 0 — first field).
    pub flink: u64,
    /// `InLoadOrderLinks.Blink`.
    pub blink: u64,
    /// `DllBase`: module load base address.
    pub dll_base: u64,
    /// `EntryPoint`.
    pub entry_point: u64,
    /// `SizeOfImage`.
    pub size_of_image: u64,
    /// `FullDllName` (`UNICODE_STRING`).
    pub full_dll_name: u64,
    /// `BaseDllName` (`UNICODE_STRING`).
    pub base_dll_name: u64,
    /// Total bytes to reserve for an entry.
    pub entry_size: u64,
    /// `UNICODE_STRING.Buffer` offset within the string struct.
    pub ustr_buffer: u64,
    /// `UNICODE_STRING` struct size.
    pub ustr_size: u64,
}

impl LdrOffsets {
    /// Offsets for the given guest width.
    pub fn for_width(width: AddressWidth) -> Self {
        match width {
            AddressWidth::W32 => LdrOffsets {
                ptr: 4,
                flink: 0x00,
                blink: 0x04,
                dll_base: 0x18,
                entry_point: 0x1C,
                size_of_image: 0x20,
                full_dll_name: 0x24,
                base_dll_name: 0x2C,
                entry_size: 0x50,
                ustr_buffer: 4,
                ustr_size: 8,
            },
            AddressWidth::W64 => LdrOffsets {
                ptr: 8,
                flink: 0x00,
                blink: 0x08,
                dll_base: 0x30,
                entry_point: 0x38,
                size_of_image: 0x40,
                full_dll_name: 0x48,
                base_dll_name: 0x58,
                entry_size: 0x98,
                ustr_buffer: 8,
                ustr_size: 16,
            },
        }
    }
}

/// Encodes a module name as UTF-16LE (no terminator), as `UNICODE_STRING`
/// buffers store it.
pub fn encode_utf16(name: &str) -> Vec<u8> {
    name.encode_utf16().flat_map(u16::to_le_bytes).collect()
}

/// Decodes a UTF-16LE buffer back to a `String` (lossy on bad surrogates).
pub fn decode_utf16(bytes: &[u8]) -> String {
    let units: Vec<u16> = bytes
        .chunks_exact(2)
        .map(|c| u16::from_le_bytes([c[0], c[1]]))
        .collect();
    String::from_utf16_lossy(&units)
}

/// Writes an `LDR_DATA_TABLE_ENTRY` at `entry_va` (links left NULL; see
/// [`link_tail`]).
#[allow(clippy::too_many_arguments)]
pub fn write_entry(
    vm: &mut Vm,
    offs: &LdrOffsets,
    entry_va: u64,
    dll_base: u64,
    size_of_image: u32,
    name_buffer_va: u64,
    name_len_bytes: u16,
) -> Result<(), HvError> {
    vm.write_ptr(entry_va + offs.dll_base, dll_base)?;
    vm.write_ptr(entry_va + offs.entry_point, dll_base)?;
    match offs.ptr {
        4 => vm.write_virt(entry_va + offs.size_of_image, &size_of_image.to_le_bytes())?,
        _ => vm.write_virt(
            entry_va + offs.size_of_image,
            &(size_of_image as u64).to_le_bytes(),
        )?,
    }
    // BaseDllName and FullDllName share the buffer (the reproduction's
    // guests don't model paths; the searcher compares BaseDllName only).
    for ustr_off in [offs.base_dll_name, offs.full_dll_name] {
        let at = entry_va + ustr_off;
        vm.write_virt(at, &name_len_bytes.to_le_bytes())?; // Length
        vm.write_virt(at + 2, &(name_len_bytes + 2).to_le_bytes())?; // MaximumLength
        vm.write_ptr(at + offs.ustr_buffer, name_buffer_va)?;
    }
    Ok(())
}

/// Links `entry_va` at the tail of the circular list headed at `head_va`
/// (load order: new modules append).
pub fn link_tail(
    vm: &mut Vm,
    offs: &LdrOffsets,
    head_va: u64,
    entry_va: u64,
) -> Result<(), HvError> {
    let old_tail = vm.read_ptr(head_va + offs.blink)?;
    // entry.flink = head; entry.blink = old_tail.
    vm.write_ptr(entry_va + offs.flink, head_va)?;
    vm.write_ptr(entry_va + offs.blink, old_tail)?;
    // old_tail.flink = entry; head.blink = entry.
    vm.write_ptr(old_tail + offs.flink, entry_va)?;
    vm.write_ptr(head_va + offs.blink, entry_va)?;
    Ok(())
}

/// Unlinks `entry_va` from its list (DKOM hiding): neighbors point past it;
/// the entry's own links are left dangling, as real rootkits leave them.
pub fn unlink(vm: &mut Vm, offs: &LdrOffsets, entry_va: u64) -> Result<(), HvError> {
    let flink = vm.read_ptr(entry_va + offs.flink)?;
    let blink = vm.read_ptr(entry_va + offs.blink)?;
    vm.write_ptr(blink + offs.flink, flink)?;
    vm.write_ptr(flink + offs.blink, blink)?;
    Ok(())
}

/// Reads the `BaseDllName` of the entry at `entry_va`.
pub fn read_base_dll_name(vm: &Vm, offs: &LdrOffsets, entry_va: u64) -> Result<String, HvError> {
    let at = entry_va + offs.base_dll_name;
    let mut len = [0u8; 2];
    vm.read_virt(at, &mut len)?;
    let len = u16::from_le_bytes(len) as usize;
    let buffer = vm.read_ptr(at + offs.ustr_buffer)?;
    let mut raw = vec![0u8; len];
    vm.read_virt(buffer, &mut raw)?;
    Ok(decode_utf16(&raw))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_hypervisor::{VmId, PAGE_SIZE};

    fn vm_with_pool(width: AddressWidth) -> (Vm, u64) {
        let mut vm = Vm::new(VmId(0), "t", width);
        let pool = match width {
            AddressWidth::W32 => 0x8120_0000u64,
            AddressWidth::W64 => 0xFFFF_F800_0200_0000u64,
        };
        vm.map_range(pool, 4 * PAGE_SIZE as u64).unwrap();
        (vm, pool)
    }

    #[test]
    fn utf16_round_trip() {
        let enc = encode_utf16("hal.dll");
        assert_eq!(enc.len(), 14);
        assert_eq!(decode_utf16(&enc), "hal.dll");
    }

    fn entry_round_trip(width: AddressWidth) {
        let (mut vm, pool) = vm_with_pool(width);
        let offs = LdrOffsets::for_width(width);
        let head = pool;
        vm.write_ptr(head + offs.flink, head).unwrap();
        vm.write_ptr(head + offs.blink, head).unwrap();

        let entry = pool + 0x100;
        let name_buf = pool + 0x400;
        let name = encode_utf16("http.sys");
        vm.write_virt(name_buf, &name).unwrap();
        write_entry(
            &mut vm,
            &offs,
            entry,
            0xF7AB_0000,
            0x42000,
            name_buf,
            name.len() as u16,
        )
        .unwrap();
        link_tail(&mut vm, &offs, head, entry).unwrap();

        assert_eq!(vm.read_ptr(head + offs.flink).unwrap(), entry);
        assert_eq!(vm.read_ptr(head + offs.blink).unwrap(), entry);
        assert_eq!(vm.read_ptr(entry + offs.dll_base).unwrap(), 0xF7AB_0000);
        assert_eq!(read_base_dll_name(&vm, &offs, entry).unwrap(), "http.sys");
    }

    #[test]
    fn entry_round_trip_32() {
        entry_round_trip(AddressWidth::W32);
    }

    #[test]
    fn entry_round_trip_64() {
        entry_round_trip(AddressWidth::W64);
    }

    #[test]
    fn link_three_then_unlink_middle() {
        let width = AddressWidth::W32;
        let (mut vm, pool) = vm_with_pool(width);
        let offs = LdrOffsets::for_width(width);
        let head = pool;
        vm.write_ptr(head + offs.flink, head).unwrap();
        vm.write_ptr(head + offs.blink, head).unwrap();

        let entries = [pool + 0x100, pool + 0x200, pool + 0x300];
        for (i, &e) in entries.iter().enumerate() {
            let nb = pool + 0x800 + i as u64 * 0x40;
            let name = encode_utf16(&format!("m{i}.sys"));
            vm.write_virt(nb, &name).unwrap();
            write_entry(
                &mut vm,
                &offs,
                e,
                0x1000 * (i as u64 + 1),
                0x1000,
                nb,
                name.len() as u16,
            )
            .unwrap();
            link_tail(&mut vm, &offs, head, e).unwrap();
        }

        // Forward walk sees m0, m1, m2.
        let walk = |vm: &Vm| -> Vec<u64> {
            let mut out = Vec::new();
            let mut at = vm.read_ptr(head + offs.flink).unwrap();
            while at != head {
                out.push(at);
                at = vm.read_ptr(at + offs.flink).unwrap();
            }
            out
        };
        assert_eq!(walk(&vm), entries.to_vec());

        unlink(&mut vm, &offs, entries[1]).unwrap();
        assert_eq!(walk(&vm), vec![entries[0], entries[2]]);

        // Backward walk agrees.
        let mut back = Vec::new();
        let mut at = vm.read_ptr(head + offs.blink).unwrap();
        while at != head {
            back.push(at);
            at = vm.read_ptr(at + offs.blink).unwrap();
        }
        assert_eq!(back, vec![entries[2], entries[0]]);
    }
}
