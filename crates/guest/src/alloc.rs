//! Guest virtual-address allocation with per-VM randomized gaps.
//!
//! On a real host, each cloned VM's driver load addresses drift apart
//! (allocation order, pool state at boot); the paper's Figure 4 shows the
//! same module at `0x0020CCF8` vs `0x00C0D0F8` on two clones. The allocator
//! reproduces that: a bump allocator whose starting offset and inter-
//! allocation gaps come from a per-VM seed, so identical module sets land at
//! different, page-aligned bases on every VM.

use mc_hypervisor::{HvError, Vm, PAGE_SIZE};

/// Minimal splitmix64 stream — deterministic, `Clone`, no external state.
/// (Used instead of `rand::StdRng`, which is deliberately not `Clone`.)
#[derive(Clone, Copy, Debug)]
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, bound)`.
    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound.max(1)
    }
}

/// Seeded bump allocator over a guest VA region.
#[derive(Clone, Debug)]
pub struct BaseAllocator {
    cursor: u64,
    rng: SplitMix64,
}

impl BaseAllocator {
    /// Creates an allocator over the region starting at `region_base`.
    pub fn new(region_base: u64, seed: u64) -> Self {
        let mut rng = SplitMix64(seed);
        // Randomize the starting point by up to 4 MiB of pages.
        let skew = rng.below(1024) * PAGE_SIZE as u64;
        BaseAllocator {
            cursor: region_base + skew,
            rng,
        }
    }

    /// Reserves `len` bytes (rounded up to pages) plus a random guard gap;
    /// returns the page-aligned base. Does not map anything.
    pub fn alloc(&mut self, len: u64) -> u64 {
        let base = self.cursor;
        let pages = len.div_ceil(PAGE_SIZE as u64).max(1);
        let gap = 1 + self.rng.below(63);
        self.cursor += (pages + gap) * PAGE_SIZE as u64;
        base
    }

    /// Reserves and maps `len` bytes in `vm`; returns the base VA.
    pub fn alloc_mapped(&mut self, vm: &mut Vm, len: u64) -> Result<u64, HvError> {
        let base = self.alloc(len);
        vm.map_range(base, len)?;
        Ok(base)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_hypervisor::{AddressWidth, VmId};

    #[test]
    fn bases_are_page_aligned_and_disjoint() {
        let mut a = BaseAllocator::new(0xF700_0000, 1);
        let b1 = a.alloc(10_000);
        let b2 = a.alloc(4_096);
        let b3 = a.alloc(1);
        assert_eq!(b1 % PAGE_SIZE as u64, 0);
        assert!(b2 >= b1 + 3 * PAGE_SIZE as u64, "10000 bytes = 3 pages");
        assert!(b3 > b2);
    }

    #[test]
    fn different_seeds_give_different_layouts() {
        let b1 = BaseAllocator::new(0xF700_0000, 1).alloc(4096);
        let b2 = BaseAllocator::new(0xF700_0000, 2).alloc(4096);
        assert_ne!(b1, b2);
        // Same seed reproduces the layout.
        let b3 = BaseAllocator::new(0xF700_0000, 1).alloc(4096);
        assert_eq!(b1, b3);
    }

    #[test]
    fn alloc_mapped_makes_range_readable() {
        let mut vm = Vm::new(VmId(0), "t", AddressWidth::W32);
        let mut a = BaseAllocator::new(0x8120_0000, 3);
        let va = a.alloc_mapped(&mut vm, 5000).unwrap();
        let mut buf = vec![0u8; 5000];
        vm.read_virt(va, &mut buf).unwrap();
    }

    #[test]
    fn splitmix_is_deterministic_and_varied() {
        let mut a = SplitMix64(7);
        let mut b = SplitMix64(7);
        let seq_a: Vec<u64> = (0..8).map(|_| a.next()).collect();
        let seq_b: Vec<u64> = (0..8).map(|_| b.next()).collect();
        assert_eq!(seq_a, seq_b);
        assert!(seq_a.windows(2).any(|w| w[0] != w[1]));
    }
}
