//! The guest kernel module loader.
//!
//! Maps a PE file image into the guest's kernel address space in *memory
//! layout* and applies base relocations. This performs the forward
//! transformation the paper describes:
//!
//! > "The module file contains relative virtual addresses that the module
//! > loader replaces with corresponding absolute addresses when it is loaded
//! > into memory. The absolute address is computed by adding the relative
//! > virtual address to module's base address."
//!
//! ModChecker's Algorithm 2 is the inverse of what happens here.

use mc_hypervisor::{AddressWidth, HvError, Vm};
use mc_pe::parser::ParsedModule;
use mc_pe::PeFile;

/// Ground truth about one loaded module.
#[derive(Clone, Debug)]
pub struct LoadedModule {
    /// Module name (`BaseDllName`).
    pub name: String,
    /// Load base address (`DllBase`).
    pub base: u64,
    /// `SizeOfImage` in bytes.
    pub size: u32,
    /// VA of this module's `LDR_DATA_TABLE_ENTRY` (filled by the caller
    /// after the entry is allocated).
    pub ldr_entry_va: u64,
    /// RVAs of the relocation slots the loader rewrote (ground truth for
    /// the reloc-table ablation; ModChecker must not use this).
    pub reloc_rvas: Vec<u32>,
}

/// Maps `pe` into `vm` at `base`, applies relocations, and returns ground
/// truth. Does not touch the module list (see [`crate::GuestOs::load`]).
pub fn load_module(
    vm: &mut Vm,
    pe: &PeFile,
    name: &str,
    base: u64,
) -> Result<LoadedModule, HvError> {
    let file = pe.bytes();
    let parsed = ParsedModule::parse_file(file).expect("corpus PE files parse");
    let size = pe.size_of_image();

    // Reserve the whole image range (zero-filled pages).
    vm.map_range(base, size as u64)?;

    // Headers occupy the image start, byte-for-byte from the file.
    let headers_len = parsed
        .sections
        .iter()
        .map(|s| s.header_range.end)
        .max()
        .unwrap_or(parsed.nt_range.end);
    vm.write_virt(base, &file[..headers_len])?;

    // Map each section's raw data to its VirtualAddress. VirtualSize beyond
    // SizeOfRawData stays zero (the loader's zero-fill).
    for (i, s) in parsed.sections.iter().enumerate() {
        let data = parsed
            .section_data(file, i)
            .expect("section ranges validated by parse");
        vm.write_virt(base + s.virtual_address as u64, data)?;
    }

    // Base relocation: every slot holds a target RVA (ImageBase = 0 model);
    // the loader replaces it with the absolute address RVA + base.
    match vm.width() {
        AddressWidth::W32 => {
            for &rva in pe.reloc_rvas() {
                let at = base + rva as u64;
                let mut slot = [0u8; 4];
                vm.read_virt(at, &mut slot)?;
                let target_rva = u32::from_le_bytes(slot);
                let absolute = (target_rva as u64 + base) as u32;
                vm.write_virt(at, &absolute.to_le_bytes())?;
            }
        }
        AddressWidth::W64 => {
            for &rva in pe.reloc_rvas() {
                let at = base + rva as u64;
                let mut slot = [0u8; 8];
                vm.read_virt(at, &mut slot)?;
                let target_rva = u64::from_le_bytes(slot);
                let absolute = target_rva + base;
                vm.write_virt(at, &absolute.to_le_bytes())?;
            }
        }
    }

    Ok(LoadedModule {
        name: name.to_string(),
        base,
        size,
        ldr_entry_va: 0,
        reloc_rvas: pe.reloc_rvas().to_vec(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_hypervisor::VmId;
    use mc_pe::corpus::ModuleBlueprint;
    use mc_pe::parser::ParsedModule;

    fn load_one(width: AddressWidth, base: u64) -> (Vm, LoadedModule, PeFile) {
        let mut vm = Vm::new(VmId(0), "t", width);
        let pe = ModuleBlueprint::new("x.sys", width, 8 * 1024)
            .build()
            .unwrap();
        let m = load_module(&mut vm, &pe, "x.sys", base).unwrap();
        (vm, m, pe)
    }

    #[test]
    fn loaded_image_parses_in_memory_layout() {
        let (vm, m, _) = load_one(AddressWidth::W32, 0xF700_0000);
        let mut img = vec![0u8; m.size as usize];
        vm.read_virt(m.base, &mut img).unwrap();
        let parsed = ParsedModule::parse_memory(&img).unwrap();
        assert_eq!(parsed.sections[0].name, ".text");
        // Section data sits at VirtualAddress in the captured image.
        let text = parsed.section_data(&img, 0).unwrap();
        assert!(!text.iter().all(|&b| b == 0));
    }

    #[test]
    fn relocation_rewrites_slots_to_absolute() {
        let base = 0xF712_0000u64;
        let (vm, m, pe) = load_one(AddressWidth::W32, base);
        let file = pe.bytes();
        let parsed = ParsedModule::parse_file(file).unwrap();
        for &rva in pe.reloc_rvas().iter().take(8) {
            // File slot holds the target RVA.
            let text = &parsed.sections[0];
            let file_off = (rva - text.virtual_address) as usize + text.data_range.start;
            let file_val = u32::from_le_bytes(file[file_off..file_off + 4].try_into().unwrap());
            // Memory slot holds target RVA + base.
            let mut mem_slot = [0u8; 4];
            vm.read_virt(m.base + rva as u64, &mut mem_slot).unwrap();
            let mem_val = u32::from_le_bytes(mem_slot);
            assert_eq!(
                mem_val as u64,
                file_val as u64 + base,
                "slot at rva {rva:#x}"
            );
        }
    }

    #[test]
    fn non_reloc_bytes_match_file() {
        let (vm, m, pe) = load_one(AddressWidth::W32, 0xF734_0000);
        let file = pe.bytes();
        let parsed = ParsedModule::parse_file(file).unwrap();
        let text = &parsed.sections[0];
        let file_text = parsed.section_data(file, 0).unwrap();
        let mut mem_text = vec![0u8; file_text.len()];
        vm.read_virt(m.base + text.virtual_address as u64, &mut mem_text)
            .unwrap();
        // Blank out relocation slots on both sides; the rest must be equal.
        let mut file_text = file_text.to_vec();
        for &rva in pe.reloc_rvas() {
            let off = (rva - text.virtual_address) as usize;
            if off + 4 <= file_text.len() {
                file_text[off..off + 4].fill(0);
                mem_text[off..off + 4].fill(0);
            }
        }
        assert_eq!(file_text, mem_text);
    }

    #[test]
    fn w64_relocation_uses_eight_byte_slots() {
        let base = 0xFFFF_F880_0010_0000u64;
        let (vm, _m, pe) = load_one(AddressWidth::W64, base);
        let rva = pe.reloc_rvas()[0];
        let mut slot = [0u8; 8];
        vm.read_virt(base + rva as u64, &mut slot).unwrap();
        let abs = u64::from_le_bytes(slot);
        assert!(
            abs >= base,
            "absolute address {abs:#x} below base {base:#x}"
        );
    }
}
