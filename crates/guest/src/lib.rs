//! Simulated Windows-XP-like guest kernel.
//!
//! ModChecker never runs code *inside* a guest — it only reads guest memory.
//! What it reads, though, is highly structured: the kernel's loaded-module
//! list (`PsLoadedModuleList`, a circular doubly linked list of
//! `LDR_DATA_TABLE_ENTRY` nodes, the paper's Figure 2) and the loaded PE
//! images those entries point at. This crate builds exactly those bytes
//! inside a [`mc_hypervisor::Vm`]:
//!
//! * [`ldr`] — byte-accurate `LDR_DATA_TABLE_ENTRY` and `UNICODE_STRING`
//!   encodings at the real Windows field offsets (32- and 64-bit variants).
//! * [`loader`] — the kernel module loader: maps a PE file image into the
//!   guest's kernel address space in memory layout and applies base
//!   relocations, replacing each stored RVA with `RVA + base` — the exact
//!   transformation the paper's Algorithm 2 later reverses.
//! * [`GuestOs`] — assembles a whole guest: kernel globals page, module
//!   list, and the standard module corpus loaded at per-VM randomized bases.
//!   The paper's cloned VMs share identical module *files* but load them at
//!   different addresses; we reproduce that by regenerating each guest from
//!   the same deterministic corpus with a per-VM base-allocation seed.
//!
//! The struct also keeps *ground truth* (module bases and LDR entry
//! addresses) for use by the attack layer and by tests. ModChecker itself
//! must never touch ground truth: it discovers everything through VMI.

#![warn(missing_docs)]

pub mod ldr;
pub mod loader;

mod alloc;

pub use alloc::BaseAllocator;
pub use ldr::LdrOffsets;
pub use loader::{load_module, LoadedModule};

use mc_hypervisor::{AddressWidth, HvError, Hypervisor, VmId, PAGE_SIZE};
use mc_pe::corpus::{standard_corpus, ModuleBlueprint};
use mc_pe::PeFile;

/// The symbol name introspectors resolve to find the module list.
pub const PS_LOADED_MODULE_LIST: &str = "PsLoadedModuleList";

/// Guest virtual-address layout constants.
pub mod layout {
    /// 32-bit: VA of the kernel-globals page (holds `PsLoadedModuleList`).
    pub const GLOBALS_VA_32: u64 = 0x8055_0000;
    /// 32-bit: driver image region base (XP loads drivers around here).
    pub const MODULE_REGION_32: u64 = 0xF700_0000;
    /// 32-bit: nonpaged-pool-like region for loader metadata (LDR entries).
    pub const POOL_REGION_32: u64 = 0x8120_0000;
    /// 64-bit: VA of the kernel-globals page.
    pub const GLOBALS_VA_64: u64 = 0xFFFF_F800_0100_0000;
    /// 64-bit: driver image region base.
    pub const MODULE_REGION_64: u64 = 0xFFFF_F880_0000_0000;
    /// 64-bit: pool region for loader metadata.
    pub const POOL_REGION_64: u64 = 0xFFFF_F800_0200_0000;
}

/// A fully assembled guest OS inside one VM, plus ground truth about it.
#[derive(Clone, Debug)]
pub struct GuestOs {
    /// The VM this guest lives in.
    pub vm: VmId,
    /// Guest pointer width.
    pub width: AddressWidth,
    /// VA of the `PsLoadedModuleList` list head.
    pub list_head_va: u64,
    /// Ground truth: loaded modules in load order.
    pub modules: Vec<LoadedModule>,
    /// Pool allocator for loader metadata.
    pool: BaseAllocator,
}

impl GuestOs {
    /// Installs a bare kernel into `vm_id`: globals page with an empty
    /// circular module list, and the `PsLoadedModuleList` symbol exported to
    /// the VM's introspection profile.
    pub fn install(hv: &mut Hypervisor, vm_id: VmId, seed: u64) -> Result<Self, HvError> {
        let vm = hv.vm_mut(vm_id)?;
        let width = vm.width();
        let (globals_va, pool_base) = match width {
            AddressWidth::W32 => (layout::GLOBALS_VA_32, layout::POOL_REGION_32),
            AddressWidth::W64 => (layout::GLOBALS_VA_64, layout::POOL_REGION_64),
        };
        vm.map_range(globals_va, PAGE_SIZE as u64)?;
        // Empty circular list: head.flink = head.blink = head.
        let head = globals_va;
        vm.write_ptr(head, head)?;
        vm.write_ptr(head + width.bytes() as u64, head)?;
        vm.symbols.insert(PS_LOADED_MODULE_LIST.to_string(), head);

        Ok(GuestOs {
            vm: vm_id,
            width,
            list_head_va: head,
            modules: Vec::new(),
            pool: BaseAllocator::new(pool_base, seed ^ 0x9E37_79B9_7F4A_7C15),
        })
    }

    /// Installs a kernel and loads the standard corpus at per-VM randomized
    /// bases (`seed` varies per VM; module files are identical across VMs).
    pub fn install_with_corpus(
        hv: &mut Hypervisor,
        vm_id: VmId,
        seed: u64,
    ) -> Result<Self, HvError> {
        let width = hv.vm(vm_id)?.width();
        let corpus: Vec<(String, PeFile)> = standard_corpus(width)
            .iter()
            .map(|bp| (bp.name.clone(), bp.build().expect("corpus builds")))
            .collect();
        Self::install_with_modules(hv, vm_id, &corpus, seed)
    }

    /// Installs a kernel and loads the given `(name, file)` pairs.
    pub fn install_with_modules(
        hv: &mut Hypervisor,
        vm_id: VmId,
        modules: &[(String, PeFile)],
        seed: u64,
    ) -> Result<Self, HvError> {
        let mut os = Self::install(hv, vm_id, seed)?;
        let width = os.width;
        let region = match width {
            AddressWidth::W32 => layout::MODULE_REGION_32,
            AddressWidth::W64 => layout::MODULE_REGION_64,
        };
        let mut bases = BaseAllocator::new(region, seed);
        for (name, pe) in modules {
            let base = bases.alloc(pe.size_of_image() as u64);
            os.load(hv, name, pe, base)?;
        }
        Ok(os)
    }

    /// Loads one module at an explicit base and links it at the tail of the
    /// module list (load order).
    pub fn load(
        &mut self,
        hv: &mut Hypervisor,
        name: &str,
        pe: &PeFile,
        base: u64,
    ) -> Result<&LoadedModule, HvError> {
        let vm = hv.vm_mut(self.vm)?;
        let mut module = load_module(vm, pe, name, base)?;

        // Allocate and encode the LDR_DATA_TABLE_ENTRY plus its name buffer.
        let offs = LdrOffsets::for_width(self.width);
        let name_utf16 = ldr::encode_utf16(name);
        let entry_va = self.pool.alloc_mapped(vm, offs.entry_size)?;
        let name_va = self.pool.alloc_mapped(vm, name_utf16.len() as u64 + 2)?;
        vm.write_virt(name_va, &name_utf16)?;

        ldr::write_entry(
            vm,
            &offs,
            entry_va,
            base,
            pe.size_of_image(),
            name_va,
            name_utf16.len() as u16,
        )?;
        ldr::link_tail(vm, &offs, self.list_head_va, entry_va)?;

        module.ldr_entry_va = entry_va;
        self.modules.push(module);
        Ok(self.modules.last().expect("just pushed"))
    }

    /// Ground-truth lookup by module name (case-insensitive, as Windows
    /// compares `BaseDllName`).
    pub fn find_module(&self, name: &str) -> Option<&LoadedModule> {
        self.modules
            .iter()
            .find(|m| m.name.eq_ignore_ascii_case(name))
    }

    /// Properly unloads a module: unlinks its LDR entry *and* unmaps its
    /// image pages (what the real loader does on driver unload), removing
    /// it from ground truth. Contrast with [`Self::dkom_hide`], which only
    /// unlinks.
    pub fn unload(&mut self, hv: &mut Hypervisor, name: &str) -> Result<(), HvError> {
        let idx = self
            .modules
            .iter()
            .position(|m| m.name.eq_ignore_ascii_case(name))
            .unwrap_or_else(|| panic!("unload: unknown module {name}"));
        let module = self.modules.remove(idx);
        let vm = hv.vm_mut(self.vm)?;
        ldr::unlink(vm, &LdrOffsets::for_width(self.width), module.ldr_entry_va)?;
        let pages = (module.size as u64).div_ceil(PAGE_SIZE as u64);
        for p in 0..pages {
            let va = module.base + p * PAGE_SIZE as u64;
            let aspace = vm.aspace;
            aspace.unmap(&mut vm.mem, va)?;
        }
        Ok(())
    }

    /// Unlinks a module's LDR entry from the list without unmapping the
    /// image — the classic DKOM (direct kernel object manipulation) hiding
    /// technique.
    ///
    /// # Panics
    /// Panics if the module is unknown — callers with untrusted input
    /// should check [`GuestOs::find_module`] first.
    pub fn dkom_hide(&self, hv: &mut Hypervisor, name: &str) -> Result<(), HvError> {
        let module = self
            .find_module(name)
            .unwrap_or_else(|| panic!("dkom_hide: unknown module {name}"));
        let vm = hv.vm_mut(self.vm)?;
        ldr::unlink(vm, &LdrOffsets::for_width(self.width), module.ldr_entry_va)
    }

    /// Overwrites bytes inside a loaded module's in-memory image (in-memory
    /// infection vector used by the attack layer).
    pub fn patch_module(
        &self,
        hv: &mut Hypervisor,
        name: &str,
        offset: u64,
        bytes: &[u8],
    ) -> Result<(), HvError> {
        let module = self
            .find_module(name)
            .unwrap_or_else(|| panic!("patch_module: unknown module {name}"));
        assert!(
            offset + bytes.len() as u64 <= module.size as u64,
            "patch outside module image"
        );
        hv.vm_mut(self.vm)?.write_virt(module.base + offset, bytes)
    }
}

/// Builds the standard evaluation cloud: `count` VMs, each with the standard
/// corpus loaded at VM-specific bases. Returns the ground-truth guests in VM
/// order.
pub fn build_cloud(
    hv: &mut Hypervisor,
    count: usize,
    width: AddressWidth,
) -> Result<Vec<GuestOs>, HvError> {
    // Build the corpus once; files are identical across VMs by construction.
    let corpus: Vec<(String, PeFile)> = standard_corpus(width)
        .iter()
        .map(|bp| (bp.name.clone(), bp.build().expect("corpus builds")))
        .collect();
    let mut guests = Vec::with_capacity(count);
    for i in 0..count {
        let vm = hv.create_vm(&format!("dom{}", i + 1), width)?;
        guests.push(GuestOs::install_with_modules(
            hv,
            vm,
            &corpus,
            i as u64 + 1,
        )?);
    }
    Ok(guests)
}

/// Convenience: builds a cloud with a custom module list (used by tests that
/// need small, fast guests).
pub fn build_cloud_with_modules(
    hv: &mut Hypervisor,
    count: usize,
    width: AddressWidth,
    blueprints: &[ModuleBlueprint],
) -> Result<Vec<GuestOs>, HvError> {
    let corpus: Vec<(String, PeFile)> = blueprints
        .iter()
        .map(|bp| (bp.name.clone(), bp.build().expect("blueprint builds")))
        .collect();
    let mut guests = Vec::with_capacity(count);
    for i in 0..count {
        let vm = hv.create_vm(&format!("dom{}", i + 1), width)?;
        guests.push(GuestOs::install_with_modules(
            hv,
            vm,
            &corpus,
            i as u64 + 1,
        )?);
    }
    Ok(guests)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_blueprints(width: AddressWidth) -> Vec<ModuleBlueprint> {
        vec![
            ModuleBlueprint::new("alpha.sys", width, 8 * 1024),
            ModuleBlueprint::new("beta.sys", width, 16 * 1024),
            ModuleBlueprint::new("hal.dll", width, 12 * 1024),
        ]
    }

    #[test]
    fn cloud_has_distinct_bases_per_vm() {
        let mut hv = Hypervisor::new();
        let guests = build_cloud_with_modules(
            &mut hv,
            3,
            AddressWidth::W32,
            &small_blueprints(AddressWidth::W32),
        )
        .unwrap();
        let bases: Vec<u64> = guests
            .iter()
            .map(|g| g.find_module("hal.dll").unwrap().base)
            .collect();
        assert_ne!(bases[0], bases[1]);
        assert_ne!(bases[1], bases[2]);
    }

    #[test]
    fn module_images_identical_after_unrelocation() {
        // Two VMs load the same file at different bases; their in-memory
        // images differ only at relocation slots.
        let mut hv = Hypervisor::new();
        let width = AddressWidth::W32;
        let guests = build_cloud_with_modules(&mut hv, 2, width, &small_blueprints(width)).unwrap();
        let m0 = guests[0].find_module("beta.sys").unwrap();
        let m1 = guests[1].find_module("beta.sys").unwrap();
        assert_ne!(m0.base, m1.base);

        let mut img0 = vec![0u8; m0.size as usize];
        let mut img1 = vec![0u8; m1.size as usize];
        hv.vm(guests[0].vm)
            .unwrap()
            .read_virt(m0.base, &mut img0)
            .unwrap();
        hv.vm(guests[1].vm)
            .unwrap()
            .read_virt(m1.base, &mut img1)
            .unwrap();
        assert_ne!(img0, img1, "relocation must differentiate the images");

        // Undo relocation using ground truth (the reloc site list): the
        // file-identical property must hold.
        let pe = small_blueprints(width)
            .iter()
            .find(|b| b.name == "beta.sys")
            .unwrap()
            .build()
            .unwrap();
        for rva in pe.reloc_rvas() {
            for (img, base) in [(&mut img0, m0.base), (&mut img1, m1.base)] {
                let at = *rva as usize;
                let mut slot = [0u8; 4];
                slot.copy_from_slice(&img[at..at + 4]);
                let abs = u32::from_le_bytes(slot) as u64;
                let rva_back = (abs - base) as u32;
                img[at..at + 4].copy_from_slice(&rva_back.to_le_bytes());
            }
        }
        assert_eq!(img0, img1, "images identical after un-relocation");
    }

    #[test]
    fn patch_module_mutates_guest_memory() {
        let mut hv = Hypervisor::new();
        let width = AddressWidth::W32;
        let guests = build_cloud_with_modules(&mut hv, 1, width, &small_blueprints(width)).unwrap();
        let base = guests[0].find_module("alpha.sys").unwrap().base;
        guests[0]
            .patch_module(&mut hv, "alpha.sys", 0x40, b"XYZ")
            .unwrap();
        let mut buf = [0u8; 3];
        hv.vm(guests[0].vm)
            .unwrap()
            .read_virt(base + 0x40, &mut buf)
            .unwrap();
        assert_eq!(&buf, b"XYZ");
    }

    #[test]
    fn symbols_are_exported_for_introspection() {
        let mut hv = Hypervisor::new();
        let width = AddressWidth::W32;
        let guests = build_cloud_with_modules(&mut hv, 1, width, &small_blueprints(width)).unwrap();
        let vm = hv.vm(guests[0].vm).unwrap();
        let head = vm.symbols[PS_LOADED_MODULE_LIST];
        assert_eq!(head, guests[0].list_head_va);
        // The head is a valid circular list: follow flinks module-count + 1
        // times and arrive back at the head.
        let mut at = vm.read_ptr(head).unwrap();
        let mut hops = 0;
        while at != head {
            at = vm.read_ptr(at).unwrap();
            hops += 1;
            assert!(hops < 100, "list does not cycle back");
        }
        assert_eq!(hops, guests[0].modules.len());
    }

    #[test]
    fn sixty_four_bit_cloud_builds() {
        let mut hv = Hypervisor::new();
        let width = AddressWidth::W64;
        let guests = build_cloud_with_modules(&mut hv, 2, width, &small_blueprints(width)).unwrap();
        let m0 = guests[0].find_module("hal.dll").unwrap();
        let m1 = guests[1].find_module("hal.dll").unwrap();
        assert_ne!(m0.base, m1.base);
        assert!(m0.base >= layout::MODULE_REGION_64);
    }

    #[test]
    fn unload_removes_entry_and_unmaps_image() {
        let mut hv = Hypervisor::new();
        let width = AddressWidth::W32;
        let mut guests =
            build_cloud_with_modules(&mut hv, 1, width, &small_blueprints(width)).unwrap();
        let base = guests[0].find_module("beta.sys").unwrap().base;
        guests[0].unload(&mut hv, "beta.sys").unwrap();
        assert!(guests[0].find_module("beta.sys").is_none());
        // Image pages are gone.
        let vm = hv.vm(guests[0].vm).unwrap();
        let mut buf = [0u8; 4];
        assert!(vm.read_virt(base, &mut buf).is_err());
        // List now has one fewer entry.
        let head = guests[0].list_head_va;
        let mut at = vm.read_ptr(head).unwrap();
        let mut count = 0;
        while at != head {
            at = vm.read_ptr(at).unwrap();
            count += 1;
        }
        assert_eq!(count, 2);
    }

    #[test]
    fn dkom_hide_removes_entry_from_list_walk() {
        let mut hv = Hypervisor::new();
        let width = AddressWidth::W32;
        let guests = build_cloud_with_modules(&mut hv, 1, width, &small_blueprints(width)).unwrap();
        guests[0].dkom_hide(&mut hv, "beta.sys").unwrap();
        let vm = hv.vm(guests[0].vm).unwrap();
        let head = guests[0].list_head_va;
        let mut at = vm.read_ptr(head).unwrap();
        let mut seen = 0;
        while at != head {
            at = vm.read_ptr(at).unwrap();
            seen += 1;
        }
        assert_eq!(seen, guests[0].modules.len() - 1);
    }
}
