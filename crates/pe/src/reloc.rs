//! Base-relocation (`.reloc`) section encoding and decoding.
//!
//! The on-disk format is a sequence of `IMAGE_BASE_RELOCATION` blocks:
//! `{ PageRVA: u32, BlockSize: u32, entries: [u16] }` where each entry packs
//! a 4-bit type and a 12-bit offset within the page. Blocks are 4-aligned
//! with `IMAGE_REL_BASED_ABSOLUTE` padding entries.
//!
//! ModChecker itself never reads this section — Algorithm 2 reconstructs
//! relocations by diffing — but the guest loader consumes it, and ablation
//! ABL-2 compares Algorithm 2 against relocation-table-driven normalization.

use crate::consts::{REL_BASED_ABSOLUTE, REL_BASED_DIR64, REL_BASED_HIGHLOW};
use crate::{read_u16, read_u32, write_u16, write_u32, AddressWidth};

/// Encodes the relocation RVA list into `.reloc` section bytes.
pub fn build_reloc_section(width: AddressWidth, rvas: &[u32]) -> Vec<u8> {
    let mut sorted: Vec<u32> = rvas.to_vec();
    sorted.sort_unstable();
    sorted.dedup();

    let rtype = match width {
        AddressWidth::W32 => REL_BASED_HIGHLOW,
        AddressWidth::W64 => REL_BASED_DIR64,
    };

    let mut out = Vec::new();
    let mut i = 0;
    while i < sorted.len() {
        let page = sorted[i] & !0xFFF;
        let mut entries: Vec<u16> = Vec::new();
        while i < sorted.len() && sorted[i] & !0xFFF == page {
            let off = (sorted[i] & 0xFFF) as u16;
            entries.push(((rtype as u16) << 12) | off);
            i += 1;
        }
        if entries.len() % 2 == 1 {
            entries.push((REL_BASED_ABSOLUTE as u16) << 12); // pad to u32 boundary
        }
        let block_size = 8 + entries.len() * 2;
        let base = out.len();
        out.resize(base + block_size, 0);
        write_u32(&mut out, base, page);
        write_u32(&mut out, base + 4, block_size as u32);
        for (k, e) in entries.iter().enumerate() {
            write_u16(&mut out, base + 8 + 2 * k, *e);
        }
    }
    out
}

/// Decodes a `.reloc` section back into relocation-slot RVAs.
///
/// Returns `None` if the section is structurally malformed (truncated block,
/// zero `BlockSize`). Unknown entry types are skipped, matching loader
/// behaviour.
pub fn parse_reloc_section(data: &[u8]) -> Option<Vec<u32>> {
    let mut rvas = Vec::new();
    let mut at = 0usize;
    while at + 8 <= data.len() {
        let page = read_u32(data, at)?;
        let block_size = read_u32(data, at + 4)? as usize;
        if block_size < 8 || at + block_size > data.len() || !block_size.is_multiple_of(2) {
            return None;
        }
        let mut e = at + 8;
        while e + 2 <= at + block_size {
            let entry = read_u16(data, e)?;
            let rtype = (entry >> 12) as u8;
            if rtype == REL_BASED_HIGHLOW || rtype == REL_BASED_DIR64 {
                rvas.push(page + (entry & 0xFFF) as u32);
            }
            e += 2;
        }
        at += block_size;
    }
    if at == data.len() {
        Some(rvas)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_single_page() {
        let rvas = vec![0x1004, 0x1010, 0x1ffc];
        let sec = build_reloc_section(AddressWidth::W32, &rvas);
        assert_eq!(parse_reloc_section(&sec).unwrap(), rvas);
    }

    #[test]
    fn round_trip_multi_page_and_dedup() {
        let rvas = vec![0x3008, 0x1004, 0x1004, 0x2ff0];
        let sec = build_reloc_section(AddressWidth::W64, &rvas);
        assert_eq!(
            parse_reloc_section(&sec).unwrap(),
            vec![0x1004, 0x2ff0, 0x3008]
        );
    }

    #[test]
    fn blocks_are_four_aligned() {
        // An odd number of entries in a page forces a padding entry.
        let sec = build_reloc_section(AddressWidth::W32, &[0x1000]);
        assert_eq!(sec.len() % 4, 0);
        assert_eq!(parse_reloc_section(&sec).unwrap(), vec![0x1000]);
    }

    #[test]
    fn empty_list_is_empty_section() {
        let sec = build_reloc_section(AddressWidth::W32, &[]);
        assert!(sec.is_empty());
        assert_eq!(parse_reloc_section(&sec).unwrap(), Vec::<u32>::new());
    }

    #[test]
    fn malformed_sections_rejected() {
        // Truncated block header.
        assert!(parse_reloc_section(&[0, 0, 0]).is_none());
        // BlockSize smaller than the header.
        let mut bad = vec![0u8; 8];
        write_u32(&mut bad, 4, 4);
        assert!(parse_reloc_section(&bad).is_none());
        // BlockSize overrunning the buffer.
        let mut bad = vec![0u8; 8];
        write_u32(&mut bad, 4, 64);
        assert!(parse_reloc_section(&bad).is_none());
    }
}
