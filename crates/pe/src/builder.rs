//! Construction of byte-exact PE files.
//!
//! [`PeBuilder`] assembles a PE *file image* (file layout: headers followed by
//! sections at `PointerToRawData`). The guest module loader in `mc-guest`
//! then maps it to memory layout and applies base relocations, exactly the
//! pipeline a Windows kernel module goes through before ModChecker sees it.
//!
//! ## Relocation model
//!
//! The paper describes module files as containing *relative virtual
//! addresses* that the loader replaces with absolute addresses
//! (`abs = RVA + base`). We realize that literally: built images use
//! `ImageBase = 0`, so every address slot in the file holds the target's RVA
//! and the loader's relocation delta *is* the load base. This is numerically
//! identical to the standard PE scheme (slot holds `ImageBase + RVA`, loader
//! adds `base − ImageBase`) and keeps Equation (1) of the paper exact.

use crate::consts::*;
use crate::error::MAX_SECTIONS;
use crate::reloc::build_reloc_section;
use crate::{align_up, write_u16, write_u32, write_u64, AddressWidth, PeError};

/// One section to be placed in the image.
#[derive(Clone, Debug)]
pub struct SectionSpec {
    /// Section name, at most 8 bytes (e.g. `.text`).
    pub name: String,
    /// `IMAGE_SECTION_HEADER.Characteristics` flags.
    pub characteristics: u32,
    /// Raw section contents (unpadded; the builder pads to `FileAlignment`).
    pub data: Vec<u8>,
}

impl SectionSpec {
    /// Convenience constructor.
    pub fn new(name: &str, characteristics: u32, data: Vec<u8>) -> Self {
        SectionSpec {
            name: name.to_string(),
            characteristics,
            data,
        }
    }
}

/// An exported symbol: name plus the RVA-relative offset of its code within
/// the section it lives in.
#[derive(Clone, Debug)]
pub struct ExportSpec {
    /// Exported symbol name (e.g. `callMessageBox`).
    pub name: String,
    /// Offset of the function within the `.text` section.
    pub text_offset: u32,
}

/// An imported DLL with the function names pulled from it.
#[derive(Clone, Debug)]
pub struct ImportSpec {
    /// DLL file name (e.g. `inject.dll`).
    pub dll: String,
    /// Imported function names.
    pub functions: Vec<String>,
}

/// A relocation site: an address slot inside a section that the loader must
/// fix up.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RelocSite {
    /// Index into the builder's section list.
    pub section: usize,
    /// Byte offset of the slot within that section's data.
    pub offset: u32,
}

/// Builder for PE files. See the [module docs](self) for the relocation
/// model.
#[derive(Clone, Debug)]
pub struct PeBuilder {
    width: AddressWidth,
    is_dll: bool,
    timestamp: u32,
    dos_stub_message: Vec<u8>,
    entry_point: u32,
    sections: Vec<SectionSpec>,
    reloc_sites: Vec<RelocSite>,
    exports: Vec<ExportSpec>,
    export_dll_name: String,
    imports: Vec<ImportSpec>,
    emit_reloc_section: bool,
}

impl PeBuilder {
    /// Starts a builder for the given pointer width.
    pub fn new(width: AddressWidth) -> Self {
        PeBuilder {
            width,
            is_dll: false,
            timestamp: 0x4F5A_3C00, // fixed, deterministic build stamp
            dos_stub_message: DOS_STUB_MESSAGE.to_vec(),
            entry_point: 0,
            sections: Vec::new(),
            reloc_sites: Vec::new(),
            exports: Vec::new(),
            export_dll_name: String::new(),
            imports: Vec::new(),
            emit_reloc_section: true,
        }
    }

    /// Marks the image as a DLL (sets `IMAGE_FILE_DLL`).
    pub fn dll(mut self, yes: bool) -> Self {
        self.is_dll = yes;
        self
    }

    /// Overrides the deterministic link timestamp.
    pub fn timestamp(mut self, ts: u32) -> Self {
        self.timestamp = ts;
        self
    }

    /// Replaces the DOS stub message (experiment §V.B.3 needs to edit it).
    pub fn dos_stub_message(mut self, msg: &[u8]) -> Self {
        self.dos_stub_message = msg.to_vec();
        self
    }

    /// Sets `AddressOfEntryPoint` (an RVA, filled after layout if pointing at
    /// section 0; here the caller passes an RVA directly).
    pub fn entry_point(mut self, rva: u32) -> Self {
        self.entry_point = rva;
        self
    }

    /// Appends a section; returns its index for use in [`RelocSite`]s.
    pub fn add_section(&mut self, spec: SectionSpec) -> usize {
        self.sections.push(spec);
        self.sections.len() - 1
    }

    /// Registers an address slot the loader must relocate.
    pub fn add_reloc_site(&mut self, site: RelocSite) {
        self.reloc_sites.push(site);
    }

    /// Registers many relocation sites within one section.
    pub fn add_reloc_sites(&mut self, section: usize, offsets: impl IntoIterator<Item = u32>) {
        self.reloc_sites.extend(
            offsets
                .into_iter()
                .map(|offset| RelocSite { section, offset }),
        );
    }

    /// Declares exported functions (generates an `.edata` section).
    pub fn exports(&mut self, dll_name: &str, exports: Vec<ExportSpec>) {
        self.export_dll_name = dll_name.to_string();
        self.exports = exports;
    }

    /// Declares imported DLLs (generates an `.idata` section).
    pub fn imports(&mut self, imports: Vec<ImportSpec>) {
        self.imports = imports;
    }

    /// Appends one imported DLL to the existing import table (the DLL-
    /// hooking attack extends a module's imports without reshaping its
    /// section list).
    pub fn add_import(&mut self, import: ImportSpec) {
        self.imports.push(import);
    }

    /// Current import list.
    pub fn import_list(&self) -> &[ImportSpec] {
        &self.imports
    }

    /// Disables emission of the `.reloc` section while keeping the loader's
    /// site list (ablation: ModChecker must work without relocation
    /// metadata, which is exactly what Algorithm 2 provides).
    pub fn strip_reloc_section(mut self) -> Self {
        self.emit_reloc_section = false;
        self
    }

    /// Number of user sections added so far.
    pub fn section_count(&self) -> usize {
        self.sections.len()
    }

    /// Read access to a section's pending data (attacks edit blueprints).
    pub fn section_data(&self, index: usize) -> &[u8] {
        &self.sections[index].data
    }

    /// Mutable access to a section's pending data.
    pub fn section_data_mut(&mut self, index: usize) -> &mut Vec<u8> {
        &mut self.sections[index].data
    }

    /// Current relocation sites (attacks may need to shift them).
    pub fn reloc_sites(&self) -> &[RelocSite] {
        &self.reloc_sites
    }

    /// Mutable relocation site list.
    pub fn reloc_sites_mut(&mut self) -> &mut Vec<RelocSite> {
        &mut self.reloc_sites
    }

    /// Finds a section index by name.
    pub fn find_section(&self, name: &str) -> Option<usize> {
        self.sections.iter().position(|s| s.name == name)
    }

    /// Assembles the PE file.
    pub fn build(&self) -> Result<PeFile, PeError> {
        for s in &self.sections {
            if s.name.len() > SECTION_NAME_LEN {
                return Err(PeError::Build(format!(
                    "section name {:?} too long",
                    s.name
                )));
            }
        }
        for site in &self.reloc_sites {
            let sec = self.sections.get(site.section).ok_or_else(|| {
                PeError::Build(format!("reloc site in missing section {}", site.section))
            })?;
            let end = site.offset as usize + self.width.bytes();
            if end > sec.data.len() {
                return Err(PeError::Build(format!(
                    "reloc site at {:#x} overruns section {:?} ({} bytes)",
                    site.offset,
                    sec.name,
                    sec.data.len()
                )));
            }
        }

        // Assemble the full section list: user sections, then synthesized
        // .edata / .idata / .reloc. Their *contents* need final RVAs, so
        // first lay out sizes, then fill.
        let mut sections = self.sections.clone();
        let export_index = if self.exports.is_empty() {
            None
        } else {
            sections.push(SectionSpec::new(
                ".edata",
                RDATA_CHARACTERISTICS,
                Vec::new(),
            ));
            Some(sections.len() - 1)
        };
        let import_index = if self.imports.is_empty() {
            None
        } else {
            sections.push(SectionSpec::new(
                ".idata",
                RDATA_CHARACTERISTICS,
                Vec::new(),
            ));
            Some(sections.len() - 1)
        };
        // Reserve .edata/.idata space before layout: their size depends only
        // on the spec lists, not on RVAs.
        if let Some(i) = export_index {
            sections[i].data = vec![0u8; export_section_size(&self.export_dll_name, &self.exports)];
        }
        if let Some(i) = import_index {
            sections[i].data = vec![0u8; import_section_size(self.width, &self.imports)];
        }
        // The .reloc section's size depends only on the site list.
        let reloc_index = if self.emit_reloc_section && !self.reloc_sites.is_empty() {
            sections.push(SectionSpec::new(
                ".reloc",
                RELOC_CHARACTERISTICS,
                Vec::new(),
            ));
            Some(sections.len() - 1)
        } else {
            None
        };

        let nsections = sections.len();
        if nsections > MAX_SECTIONS as usize {
            return Err(PeError::Build(format!("{nsections} sections exceed cap")));
        }

        let opt_size = match self.width {
            AddressWidth::W32 => OPTIONAL_HEADER_SIZE_32,
            AddressWidth::W64 => OPTIONAL_HEADER_SIZE_64,
        };
        let stub = self.render_dos_stub();
        let e_lfanew = align_up((DOS_HEADER_SIZE + stub.len()) as u32, 8);
        let headers_end = e_lfanew as usize
            + PE_SIGNATURE_SIZE
            + FILE_HEADER_SIZE
            + opt_size
            + nsections * SECTION_HEADER_SIZE;
        let size_of_headers = align_up(headers_end as u32, DEFAULT_FILE_ALIGNMENT);

        // Pass 1: assign VirtualAddress / PointerToRawData section by
        // section. `.edata`/`.idata` sizes were reserved above; the `.reloc`
        // section is always last, so by the time the cursor reaches it every
        // relocation-slot RVA is known and its content (and thus size) can be
        // produced before it is placed.
        let mut layouts: Vec<SectionLayout> = Vec::with_capacity(nsections);
        let mut va = align_up(
            size_of_headers.max(DEFAULT_SECTION_ALIGNMENT),
            DEFAULT_SECTION_ALIGNMENT,
        );
        let mut raw = size_of_headers;
        let mut reloc_rvas: Vec<u32> = Vec::new();
        for (i, s) in sections.iter_mut().enumerate() {
            if Some(i) == reloc_index {
                reloc_rvas = self
                    .reloc_sites
                    .iter()
                    .map(|site| layouts[site.section].va + site.offset)
                    .collect();
                s.data = build_reloc_section(self.width, &reloc_rvas);
            }
            let vsize = s.data.len() as u32;
            let raw_size = align_up(vsize, DEFAULT_FILE_ALIGNMENT);
            layouts.push(SectionLayout {
                va,
                vsize,
                raw,
                raw_size,
            });
            va = align_up(va + vsize.max(1), DEFAULT_SECTION_ALIGNMENT);
            raw += raw_size;
        }
        if reloc_index.is_none() {
            reloc_rvas = self
                .reloc_sites
                .iter()
                .map(|site| layouts[site.section].va + site.offset)
                .collect();
        }
        let size_of_image = va;

        // Pass 2: fill `.edata`/`.idata` contents now that RVAs are known
        // (their sizes were fixed before layout, so this cannot shift
        // anything).
        if let Some(i) = export_index {
            sections[i].data = build_export_section(
                layouts[i].va,
                &self.export_dll_name,
                &self.exports,
                self.sections
                    .iter()
                    .position(|s| s.name == ".text")
                    .map_or(0, |t| layouts[t].va),
                self.timestamp,
            );
        }
        if let Some(i) = import_index {
            sections[i].data = build_import_section(self.width, layouts[i].va, &self.imports);
        }

        // Pass 3: emit bytes.
        let file_len = raw as usize;
        let mut bytes = vec![0u8; file_len.max(headers_end)];

        // DOS header + stub.
        write_u16(&mut bytes, 0, DOS_MAGIC);
        write_u16(&mut bytes, 2, 0x0090); // e_cblp, traditional stub value
        write_u16(&mut bytes, 4, 0x0003); // e_cp
        write_u16(&mut bytes, 8, 0x0004); // e_cparhdr
        write_u16(&mut bytes, 0x18, 0x0040); // e_lfarlc: marks "new" executable
        write_u32(&mut bytes, E_LFANEW_OFFSET, e_lfanew);
        bytes[DOS_HEADER_SIZE..DOS_HEADER_SIZE + stub.len()].copy_from_slice(&stub);

        // NT signature.
        let nt = e_lfanew as usize;
        write_u32(&mut bytes, nt, PE_SIGNATURE);

        // IMAGE_FILE_HEADER.
        let fh = nt + PE_SIGNATURE_SIZE;
        write_u16(&mut bytes, fh + FH_MACHINE, self.width.machine());
        write_u16(&mut bytes, fh + FH_NUMBER_OF_SECTIONS, nsections as u16);
        write_u32(&mut bytes, fh + FH_TIME_DATE_STAMP, self.timestamp);
        write_u16(&mut bytes, fh + FH_SIZE_OF_OPTIONAL_HEADER, opt_size as u16);
        let mut fchar = FILE_EXECUTABLE_IMAGE;
        if self.width == AddressWidth::W32 {
            fchar |= FILE_32BIT_MACHINE;
        }
        if self.is_dll {
            fchar |= FILE_DLL;
        }
        write_u16(&mut bytes, fh + FH_CHARACTERISTICS, fchar);

        // IMAGE_OPTIONAL_HEADER.
        let oh = fh + FILE_HEADER_SIZE;
        write_u16(&mut bytes, oh + OH_MAGIC, self.width.optional_magic());
        bytes[oh + 2] = 9; // MajorLinkerVersion, cosmetic
        write_u32(&mut bytes, oh + OH_ADDRESS_OF_ENTRY_POINT, self.entry_point);
        match self.width {
            AddressWidth::W32 => write_u32(&mut bytes, oh + OH_IMAGE_BASE_32, 0),
            AddressWidth::W64 => write_u64(&mut bytes, oh + OH_IMAGE_BASE_64, 0),
        }
        write_u32(
            &mut bytes,
            oh + OH_SECTION_ALIGNMENT,
            DEFAULT_SECTION_ALIGNMENT,
        );
        write_u32(&mut bytes, oh + OH_FILE_ALIGNMENT, DEFAULT_FILE_ALIGNMENT);
        write_u32(&mut bytes, oh + OH_SIZE_OF_IMAGE, size_of_image);
        write_u32(&mut bytes, oh + OH_SIZE_OF_HEADERS, size_of_headers);
        let (nrva_off, dirs_off) = match self.width {
            AddressWidth::W32 => (OH_NUMBER_OF_RVA_AND_SIZES_32, OH_DATA_DIRECTORIES_32),
            AddressWidth::W64 => (OH_NUMBER_OF_RVA_AND_SIZES_64, OH_DATA_DIRECTORIES_64),
        };
        write_u32(&mut bytes, oh + nrva_off, NUM_DATA_DIRECTORIES);
        let set_dir = |bytes: &mut [u8], dir: usize, rva: u32, size: u32| {
            let at = oh + dirs_off + dir * DATA_DIRECTORY_SIZE;
            write_u32(bytes, at, rva);
            write_u32(bytes, at + 4, size);
        };
        if let Some(i) = export_index {
            set_dir(
                &mut bytes,
                DIR_EXPORT,
                layouts[i].va,
                sections[i].data.len() as u32,
            );
        }
        if let Some(i) = import_index {
            set_dir(
                &mut bytes,
                DIR_IMPORT,
                layouts[i].va,
                sections[i].data.len() as u32,
            );
        }
        if let Some(i) = reloc_index {
            set_dir(
                &mut bytes,
                DIR_BASERELOC,
                layouts[i].va,
                sections[i].data.len() as u32,
            );
        }

        // Section headers.
        let sh0 = oh + opt_size;
        for (i, (s, l)) in sections.iter().zip(&layouts).enumerate() {
            let sh = sh0 + i * SECTION_HEADER_SIZE;
            let name_bytes = s.name.as_bytes();
            bytes[sh + SH_NAME..sh + SH_NAME + name_bytes.len()].copy_from_slice(name_bytes);
            write_u32(&mut bytes, sh + SH_VIRTUAL_SIZE, l.vsize);
            write_u32(&mut bytes, sh + SH_VIRTUAL_ADDRESS, l.va);
            write_u32(&mut bytes, sh + SH_SIZE_OF_RAW_DATA, l.raw_size);
            write_u32(&mut bytes, sh + SH_POINTER_TO_RAW_DATA, l.raw);
            write_u32(&mut bytes, sh + SH_CHARACTERISTICS, s.characteristics);
        }

        // Section raw data.
        for (s, l) in sections.iter().zip(&layouts) {
            let at = l.raw as usize;
            bytes[at..at + s.data.len()].copy_from_slice(&s.data);
        }

        Ok(PeFile {
            bytes,
            width: self.width,
            reloc_rvas,
            size_of_image,
        })
    }

    /// Renders the 16-bit DOS stub program: minimal real-mode code that
    /// prints the stub message via INT 21h, followed by the message bytes.
    fn render_dos_stub(&self) -> Vec<u8> {
        // push cs / pop ds / mov dx, 0x0e / mov ah, 9 / int 21h /
        // mov ax, 0x4c01 / int 21h — the canonical MSVC stub prologue.
        let mut stub = vec![
            0x0E, 0x1F, 0xBA, 0x0E, 0x00, 0xB4, 0x09, 0xCD, 0x21, 0xB8, 0x01, 0x4C, 0xCD, 0x21,
        ];
        stub.extend_from_slice(&self.dos_stub_message);
        stub
    }
}

#[derive(Clone, Copy, Debug)]
struct SectionLayout {
    va: u32,
    vsize: u32,
    raw: u32,
    raw_size: u32,
}

/// A finished PE file image (file layout), as it would sit on the guest's
/// disk before the kernel loads it.
#[derive(Clone, Debug)]
pub struct PeFile {
    bytes: Vec<u8>,
    width: AddressWidth,
    /// RVAs of every address slot the loader must fix up. This duplicates the
    /// `.reloc` section's content in decoded form so the guest loader does
    /// not need to re-parse it (the parser can, for the ablation).
    reloc_rvas: Vec<u32>,
    size_of_image: u32,
}

impl PeFile {
    /// Raw file bytes (file layout).
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Pointer width the image was built for.
    pub fn width(&self) -> AddressWidth {
        self.width
    }

    /// Decoded relocation-slot RVAs.
    pub fn reloc_rvas(&self) -> &[u32] {
        &self.reloc_rvas
    }

    /// `SizeOfImage`: bytes of guest virtual address space the loaded module
    /// occupies.
    pub fn size_of_image(&self) -> u32 {
        self.size_of_image
    }

    /// Creates a `PeFile` from raw bytes plus externally known relocation
    /// info (used by attacks that splice bytes directly).
    pub fn from_parts(
        bytes: Vec<u8>,
        width: AddressWidth,
        reloc_rvas: Vec<u32>,
        size_of_image: u32,
    ) -> Self {
        PeFile {
            bytes,
            width,
            reloc_rvas,
            size_of_image,
        }
    }
}

fn export_section_size(dll_name: &str, exports: &[ExportSpec]) -> usize {
    // IMAGE_EXPORT_DIRECTORY + functions + names + ordinals + string blob.
    let strings: usize =
        dll_name.len() + 1 + exports.iter().map(|e| e.name.len() + 1).sum::<usize>();
    40 + exports.len() * (4 + 4 + 2) + strings
}

fn build_export_section(
    section_va: u32,
    dll_name: &str,
    exports: &[ExportSpec],
    text_va: u32,
    timestamp: u32,
) -> Vec<u8> {
    let n = exports.len();
    let mut out = vec![0u8; export_section_size(dll_name, exports)];
    let functions_off = 40;
    let names_off = functions_off + 4 * n;
    let ordinals_off = names_off + 4 * n;
    let mut strings_off = ordinals_off + 2 * n;

    // IMAGE_EXPORT_DIRECTORY.
    write_u32(&mut out, 4, timestamp);
    let dll_name_rva = section_va + strings_off as u32;
    write_u32(&mut out, 12, dll_name_rva); // Name
    write_u32(&mut out, 16, 1); // Base ordinal
    write_u32(&mut out, 20, n as u32); // NumberOfFunctions
    write_u32(&mut out, 24, n as u32); // NumberOfNames
    write_u32(&mut out, 28, section_va + functions_off as u32);
    write_u32(&mut out, 32, section_va + names_off as u32);
    write_u32(&mut out, 36, section_va + ordinals_off as u32);

    out[strings_off..strings_off + dll_name.len()].copy_from_slice(dll_name.as_bytes());
    strings_off += dll_name.len() + 1;

    for (i, e) in exports.iter().enumerate() {
        write_u32(&mut out, functions_off + 4 * i, text_va + e.text_offset);
        write_u32(&mut out, names_off + 4 * i, section_va + strings_off as u32);
        write_u16(&mut out, ordinals_off + 2 * i, i as u16);
        out[strings_off..strings_off + e.name.len()].copy_from_slice(e.name.as_bytes());
        strings_off += e.name.len() + 1;
    }
    out
}

fn import_section_size(width: AddressWidth, imports: &[ImportSpec]) -> usize {
    // Mirrors build_import_section's cursor walk exactly so the reserved
    // size equals the written size.
    let thunk = width.bytes();
    let mut size = 20 * (imports.len() + 1); // descriptors + null terminator
    for imp in imports {
        // Two thunk arrays (OriginalFirstThunk + FirstThunk), each
        // null-terminated.
        size += 2 * thunk * (imp.functions.len() + 1);
        for f in &imp.functions {
            if size % 2 == 1 {
                size += 1; // keep hint/name entries 2-aligned
            }
            size += 2 + f.len() + 1; // hint u16 + name + NUL
        }
        size += imp.dll.len() + 1;
    }
    size
}

fn build_import_section(width: AddressWidth, section_va: u32, imports: &[ImportSpec]) -> Vec<u8> {
    let mut out = vec![0u8; import_section_size(width, imports)];
    let thunk = width.bytes();
    let mut cursor = 20 * (imports.len() + 1);

    for (d, imp) in imports.iter().enumerate() {
        let desc = 20 * d;
        let oft_off = cursor;
        cursor += thunk * (imp.functions.len() + 1);
        let ft_off = cursor;
        cursor += thunk * (imp.functions.len() + 1);

        // Hint/name entries, recording each one's offset.
        let mut hint_offs = Vec::with_capacity(imp.functions.len());
        for f in &imp.functions {
            if cursor % 2 == 1 {
                cursor += 1;
            }
            hint_offs.push(cursor);
            // hint left 0; name follows
            out[cursor + 2..cursor + 2 + f.len()].copy_from_slice(f.as_bytes());
            cursor += 2 + f.len() + 1;
        }
        let dll_name_off = cursor;
        out[cursor..cursor + imp.dll.len()].copy_from_slice(imp.dll.as_bytes());
        cursor += imp.dll.len() + 1;

        // Thunk arrays point at the hint/name entries.
        for (i, h) in hint_offs.iter().enumerate() {
            let rva = (section_va + *h as u32) as u64;
            match width {
                AddressWidth::W32 => {
                    write_u32(&mut out, oft_off + thunk * i, rva as u32);
                    write_u32(&mut out, ft_off + thunk * i, rva as u32);
                }
                AddressWidth::W64 => {
                    write_u64(&mut out, oft_off + thunk * i, rva);
                    write_u64(&mut out, ft_off + thunk * i, rva);
                }
            }
        }

        write_u32(&mut out, desc, section_va + oft_off as u32); // OriginalFirstThunk
        write_u32(&mut out, desc + 12, section_va + dll_name_off as u32); // Name
        write_u32(&mut out, desc + 16, section_va + ft_off as u32); // FirstThunk
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::ParsedModule;

    fn tiny_builder() -> PeBuilder {
        let mut b = PeBuilder::new(AddressWidth::W32);
        let text = b.add_section(SectionSpec::new(
            ".text",
            TEXT_CHARACTERISTICS,
            vec![0x90; 64],
        ));
        b.add_section(SectionSpec::new(
            ".data",
            DATA_CHARACTERISTICS,
            vec![0xAA; 32],
        ));
        b.add_reloc_sites(text, [4u32, 20]);
        b
    }

    #[test]
    fn build_produces_parseable_file() {
        let pe = tiny_builder().build().unwrap();
        let parsed = ParsedModule::parse_file(pe.bytes()).unwrap();
        // .text, .data, synthesized .reloc
        assert_eq!(parsed.sections.len(), 3);
        assert_eq!(parsed.sections[0].name, ".text");
        assert_eq!(parsed.sections[1].name, ".data");
        assert_eq!(parsed.sections[2].name, ".reloc");
        assert!(parsed.sections[0].is_executable());
        assert!(!parsed.sections[1].is_executable());
    }

    #[test]
    fn dos_stub_contains_message() {
        let pe = tiny_builder().build().unwrap();
        let window = pe.bytes();
        let msg = DOS_STUB_MESSAGE;
        assert!(
            window.windows(msg.len()).any(|w| w == msg),
            "stub message missing"
        );
    }

    #[test]
    fn reloc_rvas_point_into_text() {
        let pe = tiny_builder().build().unwrap();
        let parsed = ParsedModule::parse_file(pe.bytes()).unwrap();
        let text = &parsed.sections[0];
        for rva in pe.reloc_rvas() {
            assert!(
                *rva >= text.virtual_address && *rva < text.virtual_address + text.virtual_size,
                "reloc rva {rva:#x} outside .text"
            );
        }
        assert_eq!(pe.reloc_rvas().len(), 2);
    }

    #[test]
    fn oversized_section_name_rejected() {
        let mut b = PeBuilder::new(AddressWidth::W32);
        b.add_section(SectionSpec::new(".waytoolong", 0, vec![]));
        assert!(matches!(b.build(), Err(PeError::Build(_))));
    }

    #[test]
    fn reloc_site_overrun_rejected() {
        let mut b = PeBuilder::new(AddressWidth::W32);
        let t = b.add_section(SectionSpec::new(".text", TEXT_CHARACTERISTICS, vec![0; 8]));
        b.add_reloc_site(RelocSite {
            section: t,
            offset: 6,
        });
        assert!(matches!(b.build(), Err(PeError::Build(_))));
    }

    #[test]
    fn stripping_reloc_section_keeps_site_list() {
        let pe = tiny_builder().strip_reloc_section().build().unwrap();
        let parsed = ParsedModule::parse_file(pe.bytes()).unwrap();
        assert_eq!(parsed.sections.len(), 2, "no .reloc emitted");
        assert_eq!(pe.reloc_rvas().len(), 2, "loader info retained");
    }

    #[test]
    fn exports_and_imports_round_trip_structurally() {
        let mut b = PeBuilder::new(AddressWidth::W32);
        let t = b.add_section(SectionSpec::new(
            ".text",
            TEXT_CHARACTERISTICS,
            vec![0xC3; 32],
        ));
        b.add_reloc_sites(t, [0u32]);
        b.exports(
            "inject.dll",
            vec![ExportSpec {
                name: "callMessageBox".into(),
                text_offset: 16,
            }],
        );
        b.imports(vec![ImportSpec {
            dll: "ntoskrnl.exe".into(),
            functions: vec!["IoCreateDevice".into(), "IoDeleteDevice".into()],
        }]);
        let pe = b.build().unwrap();
        let parsed = ParsedModule::parse_file(pe.bytes()).unwrap();
        let names: Vec<&str> = parsed.sections.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, vec![".text", ".edata", ".idata", ".reloc"]);
        // The export section must contain the symbol and DLL names.
        let edata = parsed.section_file_data(pe.bytes(), 1).unwrap();
        assert!(edata
            .windows(b"callMessageBox".len())
            .any(|w| w == b"callMessageBox"));
        assert!(edata
            .windows(b"inject.dll".len())
            .any(|w| w == b"inject.dll"));
        let idata = parsed.section_file_data(pe.bytes(), 2).unwrap();
        assert!(idata
            .windows(b"IoCreateDevice".len())
            .any(|w| w == b"IoCreateDevice"));
    }

    #[test]
    fn dll_flag_and_timestamp_land_in_file_header() {
        use crate::consts::{
            E_LFANEW_OFFSET, FH_CHARACTERISTICS, FH_TIME_DATE_STAMP, FILE_DLL, PE_SIGNATURE_SIZE,
        };
        let mut b = PeBuilder::new(AddressWidth::W32)
            .dll(true)
            .timestamp(0x1234_5678);
        b.add_section(SectionSpec::new(
            ".text",
            TEXT_CHARACTERISTICS,
            vec![0x90; 16],
        ));
        let pe = b.build().unwrap();
        let lfanew = crate::read_u32(pe.bytes(), E_LFANEW_OFFSET).unwrap() as usize;
        let fh = lfanew + PE_SIGNATURE_SIZE;
        assert_eq!(
            crate::read_u32(pe.bytes(), fh + FH_TIME_DATE_STAMP).unwrap(),
            0x1234_5678
        );
        let fchar = crate::read_u16(pe.bytes(), fh + FH_CHARACTERISTICS).unwrap();
        assert_ne!(fchar & FILE_DLL, 0);
    }

    #[test]
    fn entry_point_written_to_optional_header() {
        use crate::consts::{E_LFANEW_OFFSET, OH_ADDRESS_OF_ENTRY_POINT, PE_SIGNATURE_SIZE};
        let mut b = PeBuilder::new(AddressWidth::W32).entry_point(0x1040);
        b.add_section(SectionSpec::new(
            ".text",
            TEXT_CHARACTERISTICS,
            vec![0x90; 16],
        ));
        let pe = b.build().unwrap();
        let lfanew = crate::read_u32(pe.bytes(), E_LFANEW_OFFSET).unwrap() as usize;
        let oh = lfanew + PE_SIGNATURE_SIZE + FILE_HEADER_SIZE;
        assert_eq!(
            crate::read_u32(pe.bytes(), oh + OH_ADDRESS_OF_ENTRY_POINT).unwrap(),
            0x1040
        );
    }

    #[test]
    fn build_is_idempotent() {
        let b = tiny_builder();
        assert_eq!(b.build().unwrap().bytes(), b.build().unwrap().bytes());
    }

    #[test]
    fn sixty_four_bit_build_parses() {
        let mut b = PeBuilder::new(AddressWidth::W64);
        let t = b.add_section(SectionSpec::new(
            ".text",
            TEXT_CHARACTERISTICS,
            vec![0x90; 128],
        ));
        b.add_reloc_sites(t, [8u32, 100]);
        let pe = b.build().unwrap();
        let parsed = ParsedModule::parse_file(pe.bytes()).unwrap();
        assert_eq!(parsed.width, AddressWidth::W64);
        assert_eq!(parsed.sections[0].name, ".text");
    }
}
