//! PE header constants and field offsets.
//!
//! Offsets follow the Microsoft PE/COFF specification for the structures the
//! paper's Figure 3 names: `IMAGE_DOS_HEADER`, `IMAGE_NT_HEADERS`
//! (`Signature` + `IMAGE_FILE_HEADER` + `IMAGE_OPTIONAL_HEADER`) and
//! `IMAGE_SECTION_HEADER`.

/// `IMAGE_DOS_HEADER.e_magic`: the ASCII bytes "MZ".
pub const DOS_MAGIC: u16 = 0x5A4D;
/// Size of `IMAGE_DOS_HEADER` itself (the stub program follows it).
pub const DOS_HEADER_SIZE: usize = 0x40;
/// Offset of `e_lfanew` (file offset of the NT headers) in the DOS header.
pub const E_LFANEW_OFFSET: usize = 0x3C;

/// `IMAGE_NT_HEADERS.Signature`: the ASCII bytes "PE\0\0".
pub const PE_SIGNATURE: u32 = 0x0000_4550;
/// Size of the NT signature field.
pub const PE_SIGNATURE_SIZE: usize = 4;

/// `IMAGE_FILE_HEADER` is a fixed 20 bytes.
pub const FILE_HEADER_SIZE: usize = 20;
/// `IMAGE_FILE_HEADER.Machine` for 32-bit x86.
pub const MACHINE_I386: u16 = 0x014C;
/// `IMAGE_FILE_HEADER.Machine` for x86-64.
pub const MACHINE_AMD64: u16 = 0x8664;

// Field offsets *within* IMAGE_FILE_HEADER.
/// `Machine` (u16).
pub const FH_MACHINE: usize = 0;
/// `NumberOfSections` (u16) — the paper's `NoOfSections`.
pub const FH_NUMBER_OF_SECTIONS: usize = 2;
/// `TimeDateStamp` (u32).
pub const FH_TIME_DATE_STAMP: usize = 4;
/// `SizeOfOptionalHeader` (u16).
pub const FH_SIZE_OF_OPTIONAL_HEADER: usize = 16;
/// `Characteristics` (u16).
pub const FH_CHARACTERISTICS: usize = 18;

/// `IMAGE_FILE_HEADER.Characteristics` bit: image is executable.
pub const FILE_EXECUTABLE_IMAGE: u16 = 0x0002;
/// `IMAGE_FILE_HEADER.Characteristics` bit: 32-bit machine word.
pub const FILE_32BIT_MACHINE: u16 = 0x0100;
/// `IMAGE_FILE_HEADER.Characteristics` bit: file is a DLL.
pub const FILE_DLL: u16 = 0x2000;

/// Optional-header magic for PE32 (32-bit).
pub const OPTIONAL_MAGIC_PE32: u16 = 0x010B;
/// Optional-header magic for PE32+ (64-bit).
pub const OPTIONAL_MAGIC_PE32_PLUS: u16 = 0x020B;

/// Standard PE32 optional header size with 16 data directories.
pub const OPTIONAL_HEADER_SIZE_32: usize = 224;
/// Standard PE32+ optional header size with 16 data directories.
pub const OPTIONAL_HEADER_SIZE_64: usize = 240;

// Field offsets *within* IMAGE_OPTIONAL_HEADER (identical for PE32/PE32+
// unless noted; sizes differ for ImageBase).
/// `Magic` (u16).
pub const OH_MAGIC: usize = 0;
/// `AddressOfEntryPoint` (u32).
pub const OH_ADDRESS_OF_ENTRY_POINT: usize = 16;
/// `ImageBase` — u32 at 28 for PE32, u64 at 24 for PE32+.
pub const OH_IMAGE_BASE_32: usize = 28;
/// `ImageBase` for PE32+ (u64).
pub const OH_IMAGE_BASE_64: usize = 24;
/// `SectionAlignment` (u32).
pub const OH_SECTION_ALIGNMENT: usize = 32;
/// `FileAlignment` (u32).
pub const OH_FILE_ALIGNMENT: usize = 36;
/// `SizeOfImage` (u32).
pub const OH_SIZE_OF_IMAGE: usize = 56;
/// `SizeOfHeaders` (u32).
pub const OH_SIZE_OF_HEADERS: usize = 60;
/// `NumberOfRvaAndSizes` (u32) — PE32 offset.
pub const OH_NUMBER_OF_RVA_AND_SIZES_32: usize = 92;
/// `NumberOfRvaAndSizes` (u32) — PE32+ offset.
pub const OH_NUMBER_OF_RVA_AND_SIZES_64: usize = 108;
/// First data directory — PE32 offset.
pub const OH_DATA_DIRECTORIES_32: usize = 96;
/// First data directory — PE32+ offset.
pub const OH_DATA_DIRECTORIES_64: usize = 112;
/// Number of data directory slots emitted.
pub const NUM_DATA_DIRECTORIES: u32 = 16;
/// Bytes per data directory entry (VirtualAddress u32 + Size u32).
pub const DATA_DIRECTORY_SIZE: usize = 8;

/// Data directory index: export table.
pub const DIR_EXPORT: usize = 0;
/// Data directory index: import table.
pub const DIR_IMPORT: usize = 1;
/// Data directory index: base relocation table.
pub const DIR_BASERELOC: usize = 5;

/// `IMAGE_SECTION_HEADER` is a fixed 40 bytes.
pub const SECTION_HEADER_SIZE: usize = 40;
/// `Name` field length (padded with NULs, not necessarily terminated).
pub const SECTION_NAME_LEN: usize = 8;

// Field offsets *within* IMAGE_SECTION_HEADER.
/// `Name` ([u8; 8]).
pub const SH_NAME: usize = 0;
/// `VirtualSize` (u32) — the paper's `sec.VirtualSize`.
pub const SH_VIRTUAL_SIZE: usize = 8;
/// `VirtualAddress` (u32) — the paper's `sec.VirtualAddress` (an RVA).
pub const SH_VIRTUAL_ADDRESS: usize = 12;
/// `SizeOfRawData` (u32).
pub const SH_SIZE_OF_RAW_DATA: usize = 16;
/// `PointerToRawData` (u32).
pub const SH_POINTER_TO_RAW_DATA: usize = 20;
/// `Characteristics` (u32).
pub const SH_CHARACTERISTICS: usize = 36;

/// Section contains executable code.
pub const SCN_CNT_CODE: u32 = 0x0000_0020;
/// Section contains initialized data.
pub const SCN_CNT_INITIALIZED_DATA: u32 = 0x0000_0040;
/// Section can be discarded after init (e.g. `.reloc`, `INIT`).
pub const SCN_MEM_DISCARDABLE: u32 = 0x0200_0000;
/// Section is executable.
pub const SCN_MEM_EXECUTE: u32 = 0x2000_0000;
/// Section is readable.
pub const SCN_MEM_READ: u32 = 0x4000_0000;
/// Section is writable.
pub const SCN_MEM_WRITE: u32 = 0x8000_0000;

/// Characteristics of a typical driver `.text` section (read-only executable
/// code — the content class the paper's Integrity-Checker hashes).
pub const TEXT_CHARACTERISTICS: u32 = SCN_CNT_CODE | SCN_MEM_EXECUTE | SCN_MEM_READ;
/// Characteristics of a typical `.data` section.
pub const DATA_CHARACTERISTICS: u32 = SCN_CNT_INITIALIZED_DATA | SCN_MEM_READ | SCN_MEM_WRITE;
/// Characteristics of a typical `.rdata` section.
pub const RDATA_CHARACTERISTICS: u32 = SCN_CNT_INITIALIZED_DATA | SCN_MEM_READ;
/// Characteristics of a typical `.reloc` section.
pub const RELOC_CHARACTERISTICS: u32 =
    SCN_CNT_INITIALIZED_DATA | SCN_MEM_READ | SCN_MEM_DISCARDABLE;

/// Default section alignment for loaded images (one guest page).
pub const DEFAULT_SECTION_ALIGNMENT: u32 = 0x1000;
/// Default file alignment.
pub const DEFAULT_FILE_ALIGNMENT: u32 = 0x200;

/// Base-relocation entry type: 32-bit absolute (`IMAGE_REL_BASED_HIGHLOW`).
pub const REL_BASED_HIGHLOW: u8 = 3;
/// Base-relocation entry type: 64-bit absolute (`IMAGE_REL_BASED_DIR64`).
pub const REL_BASED_DIR64: u8 = 10;
/// Base-relocation entry type: padding (`IMAGE_REL_BASED_ABSOLUTE`).
pub const REL_BASED_ABSOLUTE: u8 = 0;

/// The DOS stub message carried by MSVC-linked binaries; the paper's
/// experiment §V.B.3 rewrites "DOS" to "CHK" inside it.
pub const DOS_STUB_MESSAGE: &[u8] = b"This program cannot be run in DOS mode.\r\r\n$";
