//! Deterministic synthetic machine-code generation.
//!
//! Real driver binaries (hal.dll, http.sys, ...) are unavailable here, so the
//! corpus fills `.text` sections with synthetic x86/x86-64 machine code that
//! preserves everything ModChecker's algorithms interact with:
//!
//! * **Embedded absolute-address operands.** Instructions like
//!   `MOV EAX, [moffs32]` and `CALL [abs32]` carry address slots the loader
//!   relocates — the exact bytes Algorithm 2 must find and rewrite back to
//!   RVAs. Their density is configurable (real 32-bit driver code averages
//!   roughly one absolute fixup per 40–80 bytes).
//! * **Function entries with a fixed prologue** (`PUSH EBP; MOV EBP,ESP;
//!   SUB ESP, imm8`) so the inline-hooking attack has a ≥5-byte entry
//!   sequence to overwrite, as in the paper's Figure 5.
//! * **Opcode caves** — runs of `00` bytes between functions — which inline
//!   hooking uses to stash its payload.
//! * **Literal `DEC ECX` (0x49) opcodes** for the single-opcode-replacement
//!   experiment (§V.B.1).
//!
//! Generation is a pure function of [`CodeGenConfig`] (seeded), so every
//! cloned VM derives a byte-identical module file, matching the paper's
//! "15 VM clones from a single installation" setup.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::AddressWidth;

/// Configuration for synthetic `.text` generation.
#[derive(Clone, Debug)]
pub struct CodeGenConfig {
    /// Pointer width (selects encodings and slot sizes).
    pub width: AddressWidth,
    /// Approximate size of the generated section in bytes.
    pub size: usize,
    /// Average bytes of ordinary instructions between address-bearing ones.
    pub addr_spacing: usize,
    /// Length of the zero cave after each function.
    pub cave_len: usize,
    /// Range of RVAs address operands point at (consistency is what matters;
    /// targets default to plausible in-image RVAs).
    pub target_rva_range: std::ops::Range<u32>,
    /// RNG seed; same seed ⇒ byte-identical output.
    pub seed: u64,
}

impl CodeGenConfig {
    /// A reasonable default for a module of `size` bytes.
    pub fn sized(width: AddressWidth, size: usize, seed: u64) -> Self {
        CodeGenConfig {
            width,
            size,
            addr_spacing: 48,
            cave_len: 24,
            target_rva_range: 0x1000..(size as u32).max(0x2000) * 2,
            seed,
        }
    }
}

/// A generated function's geometry within the section.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FunctionInfo {
    /// Offset of the entry point within the section.
    pub entry: u32,
    /// Total function length in bytes (prologue through RET).
    pub len: u32,
    /// Length of the fixed prologue (always ≥ 5, hookable).
    pub prologue_len: u32,
}

/// A zero-filled cave usable as a hook payload site.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CaveInfo {
    /// Offset of the first zero byte.
    pub offset: u32,
    /// Cave length in bytes.
    pub len: u32,
}

/// Output of [`generate`]: section bytes plus the geometry attacks and the
/// loader need.
#[derive(Clone, Debug)]
pub struct GeneratedCode {
    /// The section contents.
    pub bytes: Vec<u8>,
    /// Offsets of every absolute-address slot (relocation sites).
    pub reloc_offsets: Vec<u32>,
    /// Function geometry, in layout order.
    pub functions: Vec<FunctionInfo>,
    /// Zero caves, in layout order (the final cave always exists).
    pub caves: Vec<CaveInfo>,
    /// Offsets of literal `DEC ECX` (0x49) one-byte instructions.
    pub dec_ecx_offsets: Vec<u32>,
}

/// Fixed prologue: `PUSH EBP; MOV EBP, ESP; SUB ESP, imm8`.
const PROLOGUE: [u8; 6] = [0x55, 0x89, 0xE5, 0x83, 0xEC, 0x20];
/// Fixed epilogue: `MOV ESP, EBP; POP EBP; RET`.
const EPILOGUE: [u8; 4] = [0x89, 0xEC, 0x5D, 0xC3];

/// Generates a synthetic `.text` section per `cfg`.
pub fn generate(cfg: &CodeGenConfig) -> GeneratedCode {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut out = GeneratedCode {
        bytes: Vec::with_capacity(cfg.size + 64),
        reloc_offsets: Vec::new(),
        functions: Vec::new(),
        caves: Vec::new(),
        dec_ecx_offsets: Vec::new(),
    };
    let addr_bytes = cfg.width.bytes();
    // Reserve room for the epilogue + trailing cave so `size` is respected.
    let budget = cfg.size.saturating_sub(cfg.cave_len).max(64);

    let mut since_addr = 0usize;
    let mut since_dec = usize::MAX / 2; // force an early DEC ECX
    while out.bytes.len() < budget {
        let entry = out.bytes.len() as u32;
        out.bytes.extend_from_slice(&PROLOGUE);

        // Function body: at least a handful of instructions, ending when a
        // random draw or the byte budget says so.
        let body_len = rng
            .random_range(40..160)
            .min(budget.saturating_sub(out.bytes.len()).max(16));
        let body_end = out.bytes.len() + body_len;
        while out.bytes.len() < body_end {
            if since_dec >= 512 {
                // Guarantee DEC ECX appears regularly (experiment §V.B.1).
                out.dec_ecx_offsets.push(out.bytes.len() as u32);
                out.bytes.push(0x49);
                since_dec = 0;
                continue;
            }
            if since_addr >= cfg.addr_spacing && out.bytes.len() + 2 + addr_bytes <= body_end + 16 {
                emit_addr_instruction(cfg, &mut rng, &mut out);
                since_addr = 0;
                continue;
            }
            let grew = emit_plain_instruction(&mut rng, &mut out);
            since_addr += grew;
            since_dec += grew;
        }

        out.bytes.extend_from_slice(&EPILOGUE);
        out.functions.push(FunctionInfo {
            entry,
            len: out.bytes.len() as u32 - entry,
            prologue_len: PROLOGUE.len() as u32,
        });

        // Inter-function opcode cave.
        out.caves.push(CaveInfo {
            offset: out.bytes.len() as u32,
            len: cfg.cave_len as u32,
        });
        out.bytes.extend(std::iter::repeat_n(0u8, cfg.cave_len));
    }
    out
}

/// Emits one address-bearing instruction, recording its relocation slot.
fn emit_addr_instruction(cfg: &CodeGenConfig, rng: &mut StdRng, out: &mut GeneratedCode) {
    let target = rng.random_range(cfg.target_rva_range.clone()) as u64;
    match cfg.width {
        AddressWidth::W32 => {
            // Pick among MOV EAX,[abs] / CALL [abs] / PUSH imm32(ptr) /
            // MOV [abs], EAX.
            let form = rng.random_range(0u8..4);
            match form {
                0 => out.bytes.push(0xA1),           // MOV EAX, [moffs32]
                1 => out.bytes.extend([0xFF, 0x15]), // CALL [abs32]
                2 => out.bytes.push(0x68),           // PUSH imm32
                _ => out.bytes.push(0xA3),           // MOV [moffs32], EAX
            }
            out.reloc_offsets.push(out.bytes.len() as u32);
            out.bytes.extend((target as u32).to_le_bytes());
        }
        AddressWidth::W64 => {
            // MOV RAX, imm64 — the canonical 64-bit absolute reference.
            out.bytes.extend([0x48, 0xB8]);
            out.reloc_offsets.push(out.bytes.len() as u32);
            out.bytes.extend(target.to_le_bytes());
        }
    }
}

/// Emits one ordinary (non-relocated) instruction; returns its length.
fn emit_plain_instruction(rng: &mut StdRng, out: &mut GeneratedCode) -> usize {
    match rng.random_range(0u8..8) {
        0 => {
            out.bytes.push(0x90); // NOP
            1
        }
        1 => {
            out.bytes.push(0x50 + rng.random_range(0u8..8)); // PUSH reg
            1
        }
        2 => {
            out.bytes.push(0x58 + rng.random_range(0u8..8)); // POP reg
            1
        }
        3 => {
            // MOV r32, r32: 0x89 with a register-direct ModRM.
            out.bytes.extend([0x89, 0xC0 | rng.random_range(0u8..64)]);
            2
        }
        4 => {
            // ADD/SUB r32, imm8: 0x83 /0 or /5.
            let modrm = if rng.random_bool(0.5) { 0xC0 } else { 0xE8 } | rng.random_range(0u8..8);
            out.bytes.extend([0x83, modrm, rng.random_range(1u8..0x7F)]);
            3
        }
        5 => {
            // MOV r32, imm32 with a small non-address constant.
            out.bytes.push(0xB8 + rng.random_range(0u8..8));
            out.bytes
                .extend(rng.random_range(0u32..0x400).to_le_bytes());
            5
        }
        6 => {
            // TEST r32, r32.
            out.bytes.extend([0x85, 0xC0 | rng.random_range(0u8..64)]);
            2
        }
        _ => {
            // Short conditional jump with a tiny forward displacement.
            out.bytes
                .extend([0x74 + rng.random_range(0u8..2), rng.random_range(2u8..16)]);
            2
        }
    }
}

/// Generates deterministic read-only data bytes (for `.rdata`/`.data`
/// sections): a mix of string-table-looking ASCII and binary tables.
pub fn generate_data(size: usize, seed: u64) -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xDA7A_DA7A);
    let mut out = Vec::with_capacity(size);
    while out.len() < size {
        if rng.random_bool(0.3) {
            // ASCII fragment.
            let len = rng.random_range(4..24).min(size - out.len());
            for _ in 0..len {
                out.push(rng.random_range(0x20u8..0x7F));
            }
            out.push(0);
        } else {
            let len = rng.random_range(8..64).min(size.saturating_sub(out.len()));
            for _ in 0..len {
                out.push(rng.random());
            }
        }
    }
    out.truncate(size);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg32() -> CodeGenConfig {
        CodeGenConfig::sized(AddressWidth::W32, 8 * 1024, 42)
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a = generate(&cfg32());
        let b = generate(&cfg32());
        assert_eq!(a.bytes, b.bytes);
        assert_eq!(a.reloc_offsets, b.reloc_offsets);
        let mut other = cfg32();
        other.seed = 43;
        assert_ne!(generate(&other).bytes, a.bytes);
    }

    #[test]
    fn size_close_to_request() {
        let g = generate(&cfg32());
        let want = cfg32().size;
        assert!(
            g.bytes.len() >= want / 2 && g.bytes.len() <= want + 512,
            "generated {} for request {want}",
            g.bytes.len()
        );
    }

    #[test]
    fn reloc_slots_are_disjoint_and_in_bounds() {
        let g = generate(&cfg32());
        assert!(!g.reloc_offsets.is_empty());
        let mut prev_end = 0u32;
        let mut sorted = g.reloc_offsets.clone();
        sorted.sort_unstable();
        for off in sorted {
            assert!(off >= prev_end, "overlapping slots");
            assert!(off as usize + 4 <= g.bytes.len());
            prev_end = off + 4;
        }
    }

    #[test]
    fn functions_have_hookable_prologues() {
        let g = generate(&cfg32());
        assert!(!g.functions.is_empty());
        for f in &g.functions {
            assert!(f.prologue_len >= 5);
            let e = f.entry as usize;
            assert_eq!(&g.bytes[e..e + 6], &PROLOGUE);
            // RET terminates the function.
            assert_eq!(g.bytes[(f.entry + f.len) as usize - 1], 0xC3);
        }
    }

    #[test]
    fn caves_are_zero_filled() {
        let g = generate(&cfg32());
        assert!(!g.caves.is_empty());
        for c in &g.caves {
            let s = c.offset as usize;
            assert!(g.bytes[s..s + c.len as usize].iter().all(|&b| b == 0));
        }
        // The section ends with a cave (needed by EXP-B1's shift-absorbing
        // truncation).
        let last = g.caves.last().unwrap();
        assert_eq!(
            (last.offset + last.len) as usize,
            g.bytes.len(),
            "trailing cave"
        );
    }

    #[test]
    fn dec_ecx_opcodes_present_and_correct() {
        let g = generate(&cfg32());
        assert!(!g.dec_ecx_offsets.is_empty());
        for off in &g.dec_ecx_offsets {
            assert_eq!(g.bytes[*off as usize], 0x49);
        }
    }

    #[test]
    fn w64_slots_are_eight_bytes_apart_at_least() {
        let cfg = CodeGenConfig::sized(AddressWidth::W64, 8 * 1024, 7);
        let g = generate(&cfg);
        assert!(!g.reloc_offsets.is_empty());
        let mut sorted = g.reloc_offsets.clone();
        sorted.sort_unstable();
        for w in sorted.windows(2) {
            assert!(w[1] - w[0] >= 8);
        }
        // Slot is preceded by the MOV RAX, imm64 encoding.
        let first = g.reloc_offsets[0] as usize;
        assert_eq!(&g.bytes[first - 2..first], &[0x48, 0xB8]);
    }

    #[test]
    fn data_generation_deterministic() {
        assert_eq!(generate_data(512, 1), generate_data(512, 1));
        assert_ne!(generate_data(512, 1), generate_data(512, 2));
        assert_eq!(generate_data(512, 1).len(), 512);
    }
}
