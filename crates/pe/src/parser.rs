//! PE parsing — the byte-level substance of the paper's Algorithm 1.
//!
//! `Module-Parser starts with IMAGE_DOS_HEADER`, verifies the "MZ" magic,
//! follows `e_lfanew` to `IMAGE_NT_HEADER`, verifies "PE", then walks
//! `NoOfSections` section headers and extracts each section's data at
//! `[VirtualAddress, VirtualSize]`. [`ParsedModule::parse_memory`] does
//! exactly that on a captured in-memory module image;
//! [`ParsedModule::parse_file`] does the same on a file-layout image (used by
//! the guest loader), reading section data at `PointerToRawData` instead.
//!
//! The parser returns byte *ranges* rather than copies so the caller decides
//! what to hash; ModChecker hashes each header and each section's data
//! separately (headers and content hashes are what get cross-compared).

use std::ops::Range;

use crate::consts::*;
use crate::error::MAX_SECTIONS;
use crate::{read_u16, read_u32, AddressWidth, PeError};

/// Which layout the byte buffer is in.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Layout {
    /// Loaded image: section data at `VirtualAddress` (what VMI captures).
    Memory,
    /// On-disk file: section data at `PointerToRawData`.
    File,
}

/// One parsed `IMAGE_SECTION_HEADER` plus where its data lives.
#[derive(Clone, Debug)]
pub struct SectionView {
    /// Section name with trailing NULs stripped (lossy for non-UTF-8 names).
    pub name: String,
    /// `VirtualAddress` (RVA of the section data when loaded).
    pub virtual_address: u32,
    /// `VirtualSize` (bytes of meaningful section data).
    pub virtual_size: u32,
    /// `SizeOfRawData` (file-aligned on-disk size).
    pub size_of_raw_data: u32,
    /// `PointerToRawData` (file offset of the data).
    pub pointer_to_raw_data: u32,
    /// `Characteristics` flags.
    pub characteristics: u32,
    /// Byte range of this section's 40-byte header within the image.
    pub header_range: Range<usize>,
    /// Byte range of this section's data within the parsed buffer (layout-
    /// dependent), already bounds-checked.
    pub data_range: Range<usize>,
}

impl SectionView {
    /// True if the section holds executable code (`IMAGE_SCN_CNT_CODE` or
    /// `IMAGE_SCN_MEM_EXECUTE`) — the content class whose hash the paper's
    /// Integrity-Checker compares after RVA adjustment.
    pub fn is_executable(&self) -> bool {
        self.characteristics & (SCN_CNT_CODE | SCN_MEM_EXECUTE) != 0
    }

    /// True if the section is writable (self-modifying data sections are not
    /// expected to be hash-stable and are excluded from content checks).
    pub fn is_writable(&self) -> bool {
        self.characteristics & SCN_MEM_WRITE != 0
    }
}

/// Parsed header geometry of a PE image. All ranges index the buffer that was
/// parsed; the struct owns no image bytes.
#[derive(Clone, Debug)]
pub struct ParsedModule {
    /// Pointer width inferred from the optional-header magic.
    pub width: AddressWidth,
    /// Layout the buffer was parsed as.
    pub layout: Layout,
    /// `e_lfanew` (start of NT headers).
    pub e_lfanew: u32,
    /// `IMAGE_DOS_HEADER` *plus the DOS stub program*: `[0, e_lfanew)`.
    ///
    /// The stub is covered by the DOS-header hash on purpose — the paper's
    /// experiment §V.B.3 ("DOS"→"CHK" in the stub message) is detected via
    /// the DOS header hash, so the stub must be part of that hash unit.
    pub dos_range: Range<usize>,
    /// `IMAGE_NT_HEADERS` composite: signature + file header + optional.
    pub nt_range: Range<usize>,
    /// `IMAGE_FILE_HEADER` within the NT headers.
    pub file_header_range: Range<usize>,
    /// `IMAGE_OPTIONAL_HEADER`.
    pub optional_range: Range<usize>,
    /// `SizeOfImage` from the optional header.
    pub size_of_image: u32,
    /// Parsed section headers, in file order.
    pub sections: Vec<SectionView>,
}

impl ParsedModule {
    /// Parses a loaded (memory-layout) module image — Algorithm 1.
    pub fn parse_memory(image: &[u8]) -> Result<Self, PeError> {
        Self::parse(image, Layout::Memory)
    }

    /// Parses an on-disk (file-layout) PE image.
    pub fn parse_file(image: &[u8]) -> Result<Self, PeError> {
        Self::parse(image, Layout::File)
    }

    /// Shared parse path.
    pub fn parse(image: &[u8], layout: Layout) -> Result<Self, PeError> {
        let magic = read_u16(image, 0).ok_or(PeError::Truncated {
            what: "DOS header",
            offset: 0,
        })?;
        if magic != DOS_MAGIC {
            return Err(PeError::BadDosMagic(magic));
        }
        let e_lfanew = read_u32(image, E_LFANEW_OFFSET).ok_or(PeError::Truncated {
            what: "e_lfanew",
            offset: E_LFANEW_OFFSET,
        })?;
        if (e_lfanew as usize) < DOS_HEADER_SIZE || e_lfanew as usize >= image.len() {
            return Err(PeError::BadLfanew(e_lfanew));
        }
        let nt = e_lfanew as usize;
        let signature = read_u32(image, nt).ok_or(PeError::Truncated {
            what: "PE signature",
            offset: nt,
        })?;
        if signature != PE_SIGNATURE {
            return Err(PeError::BadPeSignature(signature));
        }

        let fh = nt + PE_SIGNATURE_SIZE;
        let number_of_sections =
            read_u16(image, fh + FH_NUMBER_OF_SECTIONS).ok_or(PeError::Truncated {
                what: "IMAGE_FILE_HEADER",
                offset: fh,
            })?;
        if number_of_sections > MAX_SECTIONS {
            return Err(PeError::TooManySections(number_of_sections));
        }
        let size_of_optional =
            read_u16(image, fh + FH_SIZE_OF_OPTIONAL_HEADER).ok_or(PeError::Truncated {
                what: "SizeOfOptionalHeader",
                offset: fh + FH_SIZE_OF_OPTIONAL_HEADER,
            })?;

        let oh = fh + FILE_HEADER_SIZE;
        let opt_magic = read_u16(image, oh + OH_MAGIC).ok_or(PeError::Truncated {
            what: "IMAGE_OPTIONAL_HEADER",
            offset: oh,
        })?;
        let width = match opt_magic {
            OPTIONAL_MAGIC_PE32 => AddressWidth::W32,
            OPTIONAL_MAGIC_PE32_PLUS => AddressWidth::W64,
            other => return Err(PeError::BadOptionalMagic(other)),
        };
        let min_opt = match width {
            AddressWidth::W32 => OPTIONAL_HEADER_SIZE_32,
            AddressWidth::W64 => OPTIONAL_HEADER_SIZE_64,
        } as u16;
        if size_of_optional < min_opt {
            return Err(PeError::OptionalHeaderSizeMismatch {
                declared: size_of_optional,
                expected: min_opt,
            });
        }
        let optional_end = oh + size_of_optional as usize;
        if optional_end > image.len() {
            return Err(PeError::Truncated {
                what: "IMAGE_OPTIONAL_HEADER",
                offset: optional_end,
            });
        }
        let size_of_image = read_u32(image, oh + OH_SIZE_OF_IMAGE).ok_or(PeError::Truncated {
            what: "SizeOfImage",
            offset: oh + OH_SIZE_OF_IMAGE,
        })?;

        // Walk the section headers, which start right after the optional
        // header (the paper's Algorithm 1 loop over NoOfSections).
        let mut sections = Vec::with_capacity(number_of_sections as usize);
        for i in 0..number_of_sections as usize {
            let sh = optional_end + i * SECTION_HEADER_SIZE;
            let header_end = sh + SECTION_HEADER_SIZE;
            if header_end > image.len() {
                return Err(PeError::Truncated {
                    what: "IMAGE_SECTION_HEADER",
                    offset: sh,
                });
            }
            let raw_name = &image[sh + SH_NAME..sh + SH_NAME + SECTION_NAME_LEN];
            let name_len = raw_name
                .iter()
                .position(|&b| b == 0)
                .unwrap_or(SECTION_NAME_LEN);
            let name = String::from_utf8_lossy(&raw_name[..name_len]).into_owned();

            // Unwraps are safe: header_end bounds were checked above.
            let virtual_size = read_u32(image, sh + SH_VIRTUAL_SIZE).unwrap();
            let virtual_address = read_u32(image, sh + SH_VIRTUAL_ADDRESS).unwrap();
            let size_of_raw_data = read_u32(image, sh + SH_SIZE_OF_RAW_DATA).unwrap();
            let pointer_to_raw_data = read_u32(image, sh + SH_POINTER_TO_RAW_DATA).unwrap();
            let characteristics = read_u32(image, sh + SH_CHARACTERISTICS).unwrap();

            let (start, len) = match layout {
                Layout::Memory => (virtual_address as u64, virtual_size as u64),
                // On disk only SizeOfRawData bytes exist; VirtualSize beyond
                // that is zero-fill the loader provides.
                Layout::File => (
                    pointer_to_raw_data as u64,
                    virtual_size.min(size_of_raw_data) as u64,
                ),
            };
            let end = start + len;
            if end > image.len() as u64 {
                return Err(PeError::SectionOutOfBounds {
                    name,
                    start,
                    len,
                    image_len: image.len(),
                });
            }

            sections.push(SectionView {
                name,
                virtual_address,
                virtual_size,
                size_of_raw_data,
                pointer_to_raw_data,
                characteristics,
                header_range: sh..header_end,
                data_range: start as usize..end as usize,
            });
        }

        Ok(ParsedModule {
            width,
            layout,
            e_lfanew,
            dos_range: 0..nt,
            nt_range: nt..optional_end,
            file_header_range: fh..oh,
            optional_range: oh..optional_end,
            size_of_image,
            sections,
        })
    }

    /// Section data bytes in the buffer this module was parsed from.
    ///
    /// Returns `None` only if the caller passes a different (shorter) buffer
    /// than was parsed.
    pub fn section_data<'a>(&self, image: &'a [u8], index: usize) -> Option<&'a [u8]> {
        image.get(self.sections.get(index)?.data_range.clone())
    }

    /// Alias of [`Self::section_data`] that documents file-layout intent.
    pub fn section_file_data<'a>(&self, image: &'a [u8], index: usize) -> Option<&'a [u8]> {
        debug_assert_eq!(self.layout, Layout::File);
        self.section_data(image, index)
    }

    /// Finds a section by name.
    pub fn find_section(&self, name: &str) -> Option<usize> {
        self.sections.iter().position(|s| s.name == name)
    }

    /// Bytes of the DOS header + stub.
    pub fn dos_bytes<'a>(&self, image: &'a [u8]) -> &'a [u8] {
        &image[self.dos_range.clone()]
    }

    /// Bytes of the composite NT headers.
    pub fn nt_bytes<'a>(&self, image: &'a [u8]) -> &'a [u8] {
        &image[self.nt_range.clone()]
    }

    /// Bytes of the file header.
    pub fn file_header_bytes<'a>(&self, image: &'a [u8]) -> &'a [u8] {
        &image[self.file_header_range.clone()]
    }

    /// Bytes of the optional header.
    pub fn optional_bytes<'a>(&self, image: &'a [u8]) -> &'a [u8] {
        &image[self.optional_range.clone()]
    }

    /// `AddressOfEntryPoint` from the optional header (an RVA). Kernel
    /// modules loaded by the corpus builder leave this 0 ("unset"); callers
    /// must treat 0 as *no entry point* rather than "entry at the headers".
    pub fn entry_point(&self, image: &[u8]) -> Option<u32> {
        read_u32(image, self.optional_range.start + OH_ADDRESS_OF_ENTRY_POINT)
    }

    /// The `index`-th data directory as `(VirtualAddress, Size)`.
    ///
    /// Returns `None` when the index is out of range or the optional header
    /// is too short to hold the slot.
    pub fn data_directory(&self, image: &[u8], index: usize) -> Option<(u32, u32)> {
        if index >= NUM_DATA_DIRECTORIES as usize {
            return None;
        }
        let first = match self.width {
            AddressWidth::W32 => OH_DATA_DIRECTORIES_32,
            AddressWidth::W64 => OH_DATA_DIRECTORIES_64,
        };
        let at = self.optional_range.start + first + index * DATA_DIRECTORY_SIZE;
        if at + DATA_DIRECTORY_SIZE > self.optional_range.end {
            return None;
        }
        Some((read_u32(image, at)?, read_u32(image, at + 4)?))
    }

    /// Maps an RVA to an offset into the buffer this module was parsed from,
    /// honoring the parse layout. RVAs below the first section fall in the
    /// headers, which both layouts keep at identity offsets.
    pub fn rva_to_offset(&self, rva: u32) -> Option<usize> {
        let first_va = self
            .sections
            .first()
            .map_or(u32::MAX, |s| s.virtual_address);
        if rva < first_va {
            return Some(rva as usize);
        }
        for sec in &self.sections {
            if rva >= sec.virtual_address
                && (rva - sec.virtual_address) < sec.data_range.len() as u32
            {
                return Some(sec.data_range.start + (rva - sec.virtual_address) as usize);
            }
        }
        None
    }

    /// Names of the DLLs referenced by the import directory, in descriptor
    /// order. Malformed tables yield a truncated (possibly empty) list
    /// rather than an error: the lint layer treats "whatever was readable"
    /// as the observable import surface.
    pub fn import_dlls(&self, image: &[u8]) -> Vec<String> {
        const MAX_DESCRIPTORS: usize = 64;
        const MAX_NAME: usize = 256;
        const DESCRIPTOR_SIZE: usize = 20;
        const DESC_NAME: usize = 12;

        let mut dlls = Vec::new();
        let Some((dir_rva, _)) = self.data_directory(image, DIR_IMPORT) else {
            return dlls;
        };
        if dir_rva == 0 {
            return dlls;
        }
        let Some(mut at) = self.rva_to_offset(dir_rva) else {
            return dlls;
        };
        for _ in 0..MAX_DESCRIPTORS {
            let Some(name_rva) = read_u32(image, at + DESC_NAME) else {
                break;
            };
            if name_rva == 0 {
                break;
            }
            if let Some(name_off) = self.rva_to_offset(name_rva) {
                let tail = &image[name_off.min(image.len())..];
                let len = tail
                    .iter()
                    .take(MAX_NAME)
                    .position(|&b| b == 0)
                    .unwrap_or(0);
                if len > 0 {
                    dlls.push(String::from_utf8_lossy(&tail[..len]).into_owned());
                }
            }
            at += DESCRIPTOR_SIZE;
        }
        dlls
    }

    /// Function RVAs from the export directory's `AddressOfFunctions` array
    /// (every exported entry point, before name/ordinal indirection).
    pub fn export_function_rvas(&self, image: &[u8]) -> Vec<u32> {
        const MAX_FUNCTIONS: u32 = 4096;
        const EXP_NUMBER_OF_FUNCTIONS: usize = 20;
        const EXP_ADDRESS_OF_FUNCTIONS: usize = 28;

        let mut rvas = Vec::new();
        let Some((dir_rva, _)) = self.data_directory(image, DIR_EXPORT) else {
            return rvas;
        };
        if dir_rva == 0 {
            return rvas;
        }
        let Some(dir_off) = self.rva_to_offset(dir_rva) else {
            return rvas;
        };
        let Some(count) = read_u32(image, dir_off + EXP_NUMBER_OF_FUNCTIONS) else {
            return rvas;
        };
        let Some(funcs_rva) = read_u32(image, dir_off + EXP_ADDRESS_OF_FUNCTIONS) else {
            return rvas;
        };
        let Some(funcs_off) = self.rva_to_offset(funcs_rva) else {
            return rvas;
        };
        for i in 0..count.min(MAX_FUNCTIONS) as usize {
            match read_u32(image, funcs_off + i * 4) {
                Some(rva) if rva != 0 => rvas.push(rva),
                _ => break,
            }
        }
        rvas
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{PeBuilder, SectionSpec};
    use crate::{write_u16 as w16, write_u32 as w32};

    fn sample() -> Vec<u8> {
        let mut b = PeBuilder::new(AddressWidth::W32);
        let t = b.add_section(SectionSpec::new(
            ".text",
            TEXT_CHARACTERISTICS,
            (0..200u32).map(|i| i as u8).collect(),
        ));
        b.add_section(SectionSpec::new(".data", DATA_CHARACTERISTICS, vec![7; 50]));
        b.add_reloc_sites(t, [16u32]);
        b.build().unwrap().bytes().to_vec()
    }

    #[test]
    fn header_ranges_nest_correctly() {
        let img = sample();
        let p = ParsedModule::parse_file(&img).unwrap();
        assert_eq!(p.dos_range.start, 0);
        assert_eq!(p.dos_range.end, p.e_lfanew as usize);
        assert!(p.nt_range.contains(&p.file_header_range.start));
        assert!(p.nt_range.contains(&(p.optional_range.end - 1)));
        assert_eq!(p.file_header_range.end, p.optional_range.start);
        // NT composite = 4-byte signature + file header + optional header.
        assert_eq!(
            p.nt_range.len(),
            4 + p.file_header_range.len() + p.optional_range.len()
        );
    }

    #[test]
    fn file_layout_section_data_matches_input() {
        let img = sample();
        let p = ParsedModule::parse_file(&img).unwrap();
        let text = p.section_data(&img, 0).unwrap();
        assert_eq!(text.len(), 200);
        assert_eq!(text[0], 0);
        assert_eq!(text[199], 199);
    }

    #[test]
    fn bad_dos_magic() {
        let mut img = sample();
        img[0] = b'X';
        assert!(matches!(
            ParsedModule::parse_file(&img),
            Err(PeError::BadDosMagic(_))
        ));
    }

    #[test]
    fn bad_pe_signature() {
        let mut img = sample();
        let lfanew = crate::read_u32(&img, E_LFANEW_OFFSET).unwrap() as usize;
        img[lfanew] = 0;
        assert!(matches!(
            ParsedModule::parse_file(&img),
            Err(PeError::BadPeSignature(_))
        ));
    }

    #[test]
    fn lfanew_out_of_range() {
        let mut img = sample();
        w32(&mut img, E_LFANEW_OFFSET, 0xFFFF_0000);
        assert!(matches!(
            ParsedModule::parse_file(&img),
            Err(PeError::BadLfanew(_))
        ));
    }

    #[test]
    fn truncated_buffer() {
        let img = sample();
        assert!(matches!(
            ParsedModule::parse_file(&img[..1]),
            Err(PeError::Truncated { .. })
        ));
        // Cut inside the section headers.
        let p = ParsedModule::parse_file(&img).unwrap();
        let cut = p.optional_range.end + 10;
        assert!(ParsedModule::parse_file(&img[..cut]).is_err());
    }

    #[test]
    fn hostile_section_count_rejected() {
        let mut img = sample();
        let lfanew = crate::read_u32(&img, E_LFANEW_OFFSET).unwrap() as usize;
        let fh = lfanew + PE_SIGNATURE_SIZE;
        w16(&mut img, fh + FH_NUMBER_OF_SECTIONS, u16::MAX);
        assert!(matches!(
            ParsedModule::parse_file(&img),
            Err(PeError::TooManySections(_))
        ));
    }

    #[test]
    fn hostile_section_range_rejected() {
        let mut img = sample();
        let p = ParsedModule::parse_file(&img).unwrap();
        let sh = p.sections[0].header_range.start;
        w32(&mut img, sh + SH_POINTER_TO_RAW_DATA, 0x7FFF_FFFF);
        assert!(matches!(
            ParsedModule::parse_file(&img),
            Err(PeError::SectionOutOfBounds { .. })
        ));
    }

    mod fuzz {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Arbitrary bytes must never panic the parser — only return
            /// typed errors (or parse, for inputs that happen to be valid).
            #[test]
            fn random_bytes_never_panic(data in proptest::collection::vec(any::<u8>(), 0..4096)) {
                let _ = ParsedModule::parse_memory(&data);
                let _ = ParsedModule::parse_file(&data);
            }

            /// A valid image with arbitrary single-byte corruption must
            /// never panic either (it may still parse, or error).
            #[test]
            fn corrupted_valid_image_never_panics(at in 0usize..2048, v in any::<u8>()) {
                let mut img = sample();
                let at = at % img.len();
                img[at] = v;
                let _ = ParsedModule::parse_file(&img);
                let _ = ParsedModule::parse_memory(&img);
            }
        }
    }

    #[test]
    fn executability_flags() {
        let img = sample();
        let p = ParsedModule::parse_file(&img).unwrap();
        assert!(p.sections[0].is_executable());
        assert!(!p.sections[1].is_executable());
        assert!(p.sections[1].is_writable());
    }

    #[test]
    fn entry_point_and_directories_read_back() {
        let img = sample();
        let p = ParsedModule::parse_file(&img).unwrap();
        // The test builder never sets an entry point: the RVA reads as 0.
        assert_eq!(p.entry_point(&img), Some(0));
        // Reloc directory exists (one site was added); export/import absent.
        let (reloc_rva, reloc_size) = p.data_directory(&img, DIR_BASERELOC).unwrap();
        assert!(reloc_rva != 0 && reloc_size != 0);
        assert_eq!(p.data_directory(&img, DIR_EXPORT), Some((0, 0)));
        assert_eq!(p.data_directory(&img, 16), None);
    }

    #[test]
    fn rva_mapping_covers_headers_and_sections() {
        let img = sample();
        let p = ParsedModule::parse_file(&img).unwrap();
        // Headers map to identity.
        assert_eq!(p.rva_to_offset(0), Some(0));
        // First section byte maps to its data range start (file layout).
        let s = &p.sections[0];
        assert_eq!(p.rva_to_offset(s.virtual_address), Some(s.data_range.start));
        // Past the end of all sections: unmapped.
        assert_eq!(p.rva_to_offset(0xFFFF_0000), None);
    }

    #[test]
    fn imports_and_exports_enumerate() {
        use crate::corpus::ModuleBlueprint;
        let bp = ModuleBlueprint::new("sample.sys", AddressWidth::W32, 32 * 1024)
            .with_imports(&[
                ("ntoskrnl.exe", &["ExAllocatePool"]),
                ("hal.dll", &["KfAcquireSpinLock"]),
            ])
            .with_exports(&["SampleEntry", "SampleUnload"]);
        let img = bp.build().unwrap().bytes().to_vec();
        let p = ParsedModule::parse_file(&img).unwrap();
        assert_eq!(p.import_dlls(&img), vec!["ntoskrnl.exe", "hal.dll"]);
        let exports = p.export_function_rvas(&img);
        assert_eq!(exports.len(), 2);
        let text = &p.sections[p.find_section(".text").unwrap()];
        for rva in exports {
            assert!(
                rva >= text.virtual_address && rva < text.virtual_address + text.virtual_size,
                "export RVAs land inside .text"
            );
        }
    }
}
