//! Portable Executable (PE) image model for the ModChecker reproduction.
//!
//! The ModChecker paper checks MS Windows kernel modules, which are PE
//! images (`.sys` drivers and `.dll` libraries). This crate provides every
//! PE-shaped piece the reproduction needs, built from scratch:
//!
//! * [`consts`] — header field offsets and flag constants for the subset of
//!   the PE specification the paper's Figure 3 describes (DOS, NT, FILE and
//!   OPTIONAL headers plus section headers).
//! * [`builder`] — [`builder::PeBuilder`] constructs byte-exact PE
//!   *files* (file layout, with `PointerToRawData`), including a DOS stub, a
//!   `.reloc` base-relocation section, and optional export/import
//!   directories.
//! * [`parser`] — parses raw bytes in either file layout or loaded
//!   memory layout into header/section views. This implements the paper's
//!   Algorithm 1 (header and section-data extraction) at the byte level.
//! * [`codegen`] — a deterministic synthetic machine-code generator that
//!   emits driver-like `.text` contents: realistic opcode mix, embedded
//!   absolute-address operands (the thing Algorithm 2 must undo), function
//!   entry points, and "opcode caves" used by the inline-hooking attack.
//! * [`corpus`] — the evaluation module set (`hal.dll`, `http.sys`,
//!   `dummy.sys`, ...) with paper-plausible sizes, generated deterministically
//!   so every cloned VM observes the identical file image.
//!
//! Real driver binaries are unavailable in this environment; per DESIGN.md
//! the synthetic corpus preserves what the integrity checker actually
//! depends on — PE header structure and address-bearing executable bytes.

#![warn(missing_docs)]

pub mod builder;
pub mod codegen;
pub mod consts;
pub mod corpus;
pub mod parser;
pub mod reloc;

mod error;

pub use builder::{PeBuilder, PeFile, SectionSpec};
pub use codegen::{CodeGenConfig, GeneratedCode};
pub use corpus::{standard_corpus, ModuleBlueprint};
pub use error::PeError;
pub use parser::{ParsedModule, SectionView};

/// Pointer width of the guest ISA.
///
/// The paper's testbed is 32-bit Windows XP; the reproduction also supports
/// 64-bit guests (ablation ABL-4 in DESIGN.md).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AddressWidth {
    /// 32-bit guest: 4-byte absolute addresses, PE32 optional header.
    W32,
    /// 64-bit guest: 8-byte absolute addresses, PE32+ optional header.
    W64,
}

impl AddressWidth {
    /// Size of an absolute address in bytes (the unit Algorithm 2 rewrites).
    pub fn bytes(self) -> usize {
        match self {
            AddressWidth::W32 => 4,
            AddressWidth::W64 => 8,
        }
    }

    /// The optional-header magic for this width.
    pub fn optional_magic(self) -> u16 {
        match self {
            AddressWidth::W32 => consts::OPTIONAL_MAGIC_PE32,
            AddressWidth::W64 => consts::OPTIONAL_MAGIC_PE32_PLUS,
        }
    }

    /// `IMAGE_FILE_HEADER.Machine` value.
    pub fn machine(self) -> u16 {
        match self {
            AddressWidth::W32 => consts::MACHINE_I386,
            AddressWidth::W64 => consts::MACHINE_AMD64,
        }
    }
}

/// Reads a little-endian `u16` at `off`; `None` if out of bounds.
pub fn read_u16(buf: &[u8], off: usize) -> Option<u16> {
    let b = buf.get(off..off + 2)?;
    Some(u16::from_le_bytes([b[0], b[1]]))
}

/// Reads a little-endian `u32` at `off`; `None` if out of bounds.
pub fn read_u32(buf: &[u8], off: usize) -> Option<u32> {
    let b = buf.get(off..off + 4)?;
    Some(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
}

/// Reads a little-endian `u64` at `off`; `None` if out of bounds.
pub fn read_u64(buf: &[u8], off: usize) -> Option<u64> {
    let b = buf.get(off..off + 8)?;
    Some(u64::from_le_bytes([
        b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
    ]))
}

/// Writes a little-endian `u16` at `off` (panics on OOB).
pub fn write_u16(buf: &mut [u8], off: usize, v: u16) {
    buf[off..off + 2].copy_from_slice(&v.to_le_bytes());
}

/// Writes a little-endian `u32` at `off` (panics on OOB).
pub fn write_u32(buf: &mut [u8], off: usize, v: u32) {
    buf[off..off + 4].copy_from_slice(&v.to_le_bytes());
}

/// Writes a little-endian `u64` at `off` (panics on OOB).
pub fn write_u64(buf: &mut [u8], off: usize, v: u64) {
    buf[off..off + 8].copy_from_slice(&v.to_le_bytes());
}

/// Rounds `v` up to the next multiple of `align` (which must be a power of
/// two, as PE alignments are).
pub(crate) fn align_up(v: u32, align: u32) -> u32 {
    debug_assert!(align.is_power_of_two());
    (v + align - 1) & !(align - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn align_up_basics() {
        assert_eq!(align_up(0, 0x1000), 0);
        assert_eq!(align_up(1, 0x1000), 0x1000);
        assert_eq!(align_up(0x1000, 0x1000), 0x1000);
        assert_eq!(align_up(0x1001, 0x200), 0x1200);
    }

    #[test]
    fn le_readers_handle_bounds() {
        let buf = [1u8, 0, 0, 0, 2, 0, 0, 0];
        assert_eq!(read_u32(&buf, 0), Some(1));
        assert_eq!(read_u32(&buf, 4), Some(2));
        assert_eq!(read_u32(&buf, 5), None);
        assert_eq!(read_u16(&buf, 7), None);
        assert_eq!(read_u64(&buf, 0), Some(0x0000_0002_0000_0001));
        assert_eq!(read_u64(&buf, 1), None);
    }

    #[test]
    fn width_properties() {
        assert_eq!(AddressWidth::W32.bytes(), 4);
        assert_eq!(AddressWidth::W64.bytes(), 8);
        assert_ne!(
            AddressWidth::W32.optional_magic(),
            AddressWidth::W64.optional_magic()
        );
        assert_ne!(AddressWidth::W32.machine(), AddressWidth::W64.machine());
    }
}
