//! The evaluation module corpus.
//!
//! The paper exercises real Windows XP SP2 kernel modules: `hal.dll` (§V.B.1,
//! §V.B.2), a "Hello World" dummy driver (§V.B.3), `dummy.sys` + `inject.dll`
//! (§V.B.4) and `http.sys` (§V.C runtime study). This module synthesizes
//! stand-ins with paper-plausible sizes. Every blueprint is deterministic:
//! cloned VMs must observe byte-identical module *files* (they were cloned
//! from one installation), differing in memory only by relocation.

use crate::builder::{ExportSpec, PeBuilder, PeFile, SectionSpec};
use crate::codegen::{self, CodeGenConfig, GeneratedCode};
use crate::consts::{DATA_CHARACTERISTICS, RDATA_CHARACTERISTICS, TEXT_CHARACTERISTICS};
use crate::{AddressWidth, PeError};

/// Recipe for one synthetic kernel module.
#[derive(Clone, Debug)]
pub struct ModuleBlueprint {
    /// Module file name as it appears in `BaseDllName` (e.g. `hal.dll`).
    pub name: String,
    /// Pointer width.
    pub width: AddressWidth,
    /// Target `.text` size in bytes.
    pub text_size: usize,
    /// Target `.data` size in bytes.
    pub data_size: usize,
    /// Target `.rdata` size in bytes.
    pub rdata_size: usize,
    /// Deterministic generation seed (derived from the name by default).
    pub seed: u64,
    /// Whether the image is a DLL.
    pub is_dll: bool,
    /// Exported function names, assigned to generated functions round-robin.
    pub exports: Vec<String>,
    /// Imported DLLs: `(dll, functions)`. Drivers typically import from
    /// `ntoskrnl.exe`/`hal.dll`; the DLL-hooking attack (§V.B.4) appends an
    /// entry here.
    pub imports: Vec<(String, Vec<String>)>,
    /// Size of an additional `INIT` executable section (0 = none). Real
    /// drivers carry discardable init code alongside `.text`; the checker
    /// must hash every executable section separately.
    pub init_size: usize,
}

impl ModuleBlueprint {
    /// Creates a blueprint with sizes and a name-derived seed.
    pub fn new(name: &str, width: AddressWidth, text_size: usize) -> Self {
        ModuleBlueprint {
            name: name.to_string(),
            width,
            text_size,
            data_size: (text_size / 4).max(256),
            rdata_size: (text_size / 8).max(128),
            seed: seed_from_name(name),
            is_dll: name.ends_with(".dll"),
            exports: Vec::new(),
            imports: Vec::new(),
            init_size: 0,
        }
    }

    /// Adds an `INIT` executable section of `size` bytes.
    pub fn with_init_section(mut self, size: usize) -> Self {
        self.init_size = size;
        self
    }

    /// Adds imported DLLs.
    pub fn with_imports(mut self, imports: &[(&str, &[&str])]) -> Self {
        self.imports = imports
            .iter()
            .map(|(dll, fns)| {
                (
                    dll.to_string(),
                    fns.iter().map(std::string::ToString::to_string).collect(),
                )
            })
            .collect();
        self
    }

    /// Adds exported symbols (realized against generated function entries).
    pub fn with_exports(mut self, names: &[&str]) -> Self {
        self.exports = names.iter().map(std::string::ToString::to_string).collect();
        self
    }

    /// Generates the code and a ready-to-build [`PeBuilder`].
    ///
    /// Attacks mutate the returned builder (or the produced bytes) before
    /// the guest loads the module.
    pub fn generate(&self) -> ModuleArtifacts {
        let code = codegen::generate(&CodeGenConfig::sized(self.width, self.text_size, self.seed));

        let mut builder = PeBuilder::new(self.width).dll(self.is_dll);
        let text = builder.add_section(SectionSpec::new(
            ".text",
            TEXT_CHARACTERISTICS,
            code.bytes.clone(),
        ));
        builder.add_section(SectionSpec::new(
            ".rdata",
            RDATA_CHARACTERISTICS,
            codegen::generate_data(self.rdata_size, self.seed ^ 1),
        ));
        builder.add_section(SectionSpec::new(
            ".data",
            DATA_CHARACTERISTICS,
            codegen::generate_data(self.data_size, self.seed ^ 2),
        ));
        builder.add_reloc_sites(text, code.reloc_offsets.iter().copied());

        if self.init_size > 0 {
            // Discardable init code: executable, so the checker hashes it
            // (after RVA adjustment) like .text. Windows loaders keep INIT
            // resident in the configurations the paper inspects.
            let init_code = codegen::generate(&CodeGenConfig::sized(
                self.width,
                self.init_size,
                self.seed ^ 0x1217,
            ));
            let init = builder.add_section(SectionSpec::new(
                "INIT",
                TEXT_CHARACTERISTICS,
                init_code.bytes.clone(),
            ));
            builder.add_reloc_sites(init, init_code.reloc_offsets.iter().copied());
        }

        if !self.imports.is_empty() {
            builder.imports(
                self.imports
                    .iter()
                    .map(|(dll, fns)| crate::builder::ImportSpec {
                        dll: dll.clone(),
                        functions: fns.clone(),
                    })
                    .collect(),
            );
        }
        if !self.exports.is_empty() {
            let specs = self
                .exports
                .iter()
                .enumerate()
                .map(|(i, name)| ExportSpec {
                    name: name.clone(),
                    text_offset: code.functions[i % code.functions.len()].entry,
                })
                .collect();
            builder.exports(&self.name, specs);
        }
        // Entry point: first generated function (RVA filled by the builder's
        // fixed first-section layout; .text is always section 0 at the first
        // page boundary past the headers).
        ModuleArtifacts {
            name: self.name.clone(),
            width: self.width,
            builder,
            code,
            text_section: text,
        }
    }

    /// Builds the pristine module file.
    pub fn build(&self) -> Result<PeFile, PeError> {
        self.generate().builder.build()
    }
}

/// A generated module plus the geometry attacks need to target it.
#[derive(Clone, Debug)]
pub struct ModuleArtifacts {
    /// Module name.
    pub name: String,
    /// Pointer width the module was generated for.
    pub width: AddressWidth,
    /// Builder holding the pristine sections; mutate then `build()`.
    pub builder: PeBuilder,
    /// Code geometry: functions, caves, reloc slots, `DEC ECX` sites.
    pub code: GeneratedCode,
    /// Index of the `.text` section within the builder.
    pub text_section: usize,
}

impl ModuleArtifacts {
    /// Builds the (possibly mutated) module file.
    pub fn build(&self) -> Result<PeFile, PeError> {
        self.builder.build()
    }
}

/// Stable 64-bit FNV-1a of the module name; keeps blueprints deterministic
/// without coordinating seeds by hand.
fn seed_from_name(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// The standard guest module set, sized after the Windows XP SP2 drivers the
/// paper names (sizes are order-of-magnitude faithful, scaled to keep a
/// 15-VM cloud comfortably in memory).
pub fn standard_corpus(width: AddressWidth) -> Vec<ModuleBlueprint> {
    const NT_IMPORTS: (&str, &[&str]) = (
        "ntoskrnl.exe",
        &[
            "ExAllocatePoolWithTag",
            "ExFreePoolWithTag",
            "IoCreateDevice",
            "IofCompleteRequest",
            "KeBugCheckEx",
        ],
    );
    const HAL_IMPORTS: (&str, &[&str]) = ("hal.dll", &["KfAcquireSpinLock", "READ_PORT_UCHAR"]);
    vec![
        ModuleBlueprint::new("ntoskrnl.exe", width, 512 * 1024).with_exports(&[
            "ExAllocatePoolWithTag",
            "IoCreateDevice",
            "KeBugCheckEx",
        ]),
        ModuleBlueprint::new("hal.dll", width, 128 * 1024)
            .with_exports(&["KfAcquireSpinLock", "READ_PORT_UCHAR"])
            .with_imports(&[NT_IMPORTS]),
        ModuleBlueprint::new("ntfs.sys", width, 384 * 1024)
            .with_imports(&[NT_IMPORTS])
            .with_init_section(24 * 1024),
        ModuleBlueprint::new("tcpip.sys", width, 256 * 1024)
            .with_imports(&[NT_IMPORTS, HAL_IMPORTS])
            .with_init_section(16 * 1024),
        ModuleBlueprint::new("http.sys", width, 256 * 1024).with_imports(&[NT_IMPORTS]),
        ModuleBlueprint::new("ndis.sys", width, 160 * 1024)
            .with_imports(&[NT_IMPORTS, HAL_IMPORTS]),
        ModuleBlueprint::new("win32k.sys", width, 448 * 1024).with_imports(&[NT_IMPORTS]),
        ModuleBlueprint::new("fltmgr.sys", width, 96 * 1024).with_imports(&[NT_IMPORTS]),
        ModuleBlueprint::new("ksecdd.sys", width, 64 * 1024).with_imports(&[NT_IMPORTS]),
        ModuleBlueprint::new("helloworld.sys", width, 8 * 1024),
        // dummy.sys carries a baseline import table so the §V.B.4 attack
        // can *extend* it (appending a DLL must not change the section
        // count, or the FILE header would also flag — the paper reports it
        // does not).
        ModuleBlueprint::new("dummy.sys", width, 12 * 1024).with_imports(&[(
            "ntoskrnl.exe",
            &["IoCreateDevice", "IoDeleteDevice", "IofCompleteRequest"],
        )]),
    ]
}

/// The malicious helper DLL of experiment §V.B.4.
pub fn inject_dll(width: AddressWidth) -> ModuleBlueprint {
    ModuleBlueprint::new("inject.dll", width, 4 * 1024).with_exports(&["callMessageBox"])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::ParsedModule;

    #[test]
    fn corpus_builds_and_parses() {
        for bp in standard_corpus(AddressWidth::W32) {
            let pe = bp.build().unwrap_or_else(|e| panic!("{}: {e}", bp.name));
            let parsed = ParsedModule::parse_file(pe.bytes()).unwrap();
            assert_eq!(parsed.width, AddressWidth::W32, "{}", bp.name);
            assert_eq!(parsed.sections[0].name, ".text", "{}", bp.name);
            assert!(!pe.reloc_rvas().is_empty(), "{}", bp.name);
        }
    }

    #[test]
    fn corpus_is_deterministic() {
        let a = ModuleBlueprint::new("hal.dll", AddressWidth::W32, 128 * 1024)
            .build()
            .unwrap();
        let b = ModuleBlueprint::new("hal.dll", AddressWidth::W32, 128 * 1024)
            .build()
            .unwrap();
        assert_eq!(a.bytes(), b.bytes());
    }

    #[test]
    fn distinct_modules_differ() {
        let a = ModuleBlueprint::new("a.sys", AddressWidth::W32, 16 * 1024)
            .build()
            .unwrap();
        let b = ModuleBlueprint::new("b.sys", AddressWidth::W32, 16 * 1024)
            .build()
            .unwrap();
        assert_ne!(a.bytes(), b.bytes());
    }

    #[test]
    fn inject_dll_exports_call_message_box() {
        let pe = inject_dll(AddressWidth::W32).build().unwrap();
        assert!(pe
            .bytes()
            .windows(b"callMessageBox".len())
            .any(|w| w == b"callMessageBox"));
        let parsed = ParsedModule::parse_file(pe.bytes()).unwrap();
        assert!(parsed.find_section(".edata").is_some());
    }

    #[test]
    fn init_section_is_second_executable_section() {
        let bp = ModuleBlueprint::new("drv.sys", AddressWidth::W32, 16 * 1024)
            .with_init_section(8 * 1024);
        let pe = bp.build().unwrap();
        let parsed = ParsedModule::parse_file(pe.bytes()).unwrap();
        let execs: Vec<&str> = parsed
            .sections
            .iter()
            .filter(|s| s.is_executable())
            .map(|s| s.name.as_str())
            .collect();
        assert_eq!(execs, vec![".text", "INIT"]);
        // INIT carries its own relocation sites.
        let init = &parsed.sections[parsed.find_section("INIT").unwrap()];
        assert!(pe
            .reloc_rvas()
            .iter()
            .any(|&r| r >= init.virtual_address && r < init.virtual_address + init.virtual_size));
    }

    #[test]
    fn text_sizes_match_blueprints_roughly() {
        let bp = ModuleBlueprint::new("http.sys", AddressWidth::W32, 256 * 1024);
        let pe = bp.build().unwrap();
        let parsed = ParsedModule::parse_file(pe.bytes()).unwrap();
        let text = &parsed.sections[parsed.find_section(".text").unwrap()];
        let vsize = text.virtual_size as usize;
        assert!(vsize > 200 * 1024 && vsize < 300 * 1024, "vsize {vsize}");
    }
}
