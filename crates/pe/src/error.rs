//! Typed PE parsing/building errors.

use std::fmt;

/// Errors produced while parsing or constructing PE images.
///
/// The checker must degrade gracefully on corrupt guest memory (a rootkit may
/// deliberately smash headers), so every malformation is a typed error rather
/// than a panic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PeError {
    /// Buffer smaller than a DOS header, or a header range runs off the end.
    Truncated {
        /// What we were reading when the buffer ran out.
        what: &'static str,
        /// Byte offset at which the read failed.
        offset: usize,
    },
    /// `e_magic` is not "MZ".
    BadDosMagic(u16),
    /// `e_lfanew` points outside the buffer or below the DOS header.
    BadLfanew(u32),
    /// NT signature is not "PE\0\0".
    BadPeSignature(u32),
    /// Optional-header magic is neither PE32 nor PE32+.
    BadOptionalMagic(u16),
    /// `SizeOfOptionalHeader` disagrees with the magic-implied size.
    OptionalHeaderSizeMismatch {
        /// Value from `IMAGE_FILE_HEADER.SizeOfOptionalHeader`.
        declared: u16,
        /// Minimum size implied by the optional-header magic.
        expected: u16,
    },
    /// `NumberOfSections` exceeds the sanity cap.
    TooManySections(u16),
    /// A section's data range (`VirtualAddress..+VirtualSize` or raw range)
    /// lies outside the image buffer.
    SectionOutOfBounds {
        /// Section name (possibly lossy if non-UTF-8).
        name: String,
        /// Start of the offending range.
        start: u64,
        /// Length of the offending range.
        len: u64,
        /// Size of the buffer it had to fit in.
        image_len: usize,
    },
    /// Builder misuse: e.g. duplicate section name or oversized name.
    Build(String),
}

/// Upper bound on `NumberOfSections` we accept; real drivers have < 20
/// sections, and an attacker-controlled huge count must not drive an
/// unbounded parse loop.
pub const MAX_SECTIONS: u16 = 96;

impl fmt::Display for PeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PeError::Truncated { what, offset } => {
                write!(
                    f,
                    "truncated image while reading {what} at offset {offset:#x}"
                )
            }
            PeError::BadDosMagic(m) => write!(f, "bad DOS magic {m:#06x} (expected \"MZ\")"),
            PeError::BadLfanew(v) => write!(f, "e_lfanew {v:#x} out of range"),
            PeError::BadPeSignature(s) => {
                write!(f, "bad PE signature {s:#010x} (expected \"PE\\0\\0\")")
            }
            PeError::BadOptionalMagic(m) => write!(f, "bad optional-header magic {m:#06x}"),
            PeError::OptionalHeaderSizeMismatch { declared, expected } => write!(
                f,
                "SizeOfOptionalHeader {declared} smaller than magic-implied {expected}"
            ),
            PeError::TooManySections(n) => {
                write!(f, "NumberOfSections {n} exceeds sanity cap {MAX_SECTIONS}")
            }
            PeError::SectionOutOfBounds {
                name,
                start,
                len,
                image_len,
            } => write!(
                f,
                "section {name:?} range {start:#x}+{len:#x} outside image of {image_len:#x} bytes"
            ),
            PeError::Build(msg) => write!(f, "builder error: {msg}"),
        }
    }
}

impl std::error::Error for PeError {}
