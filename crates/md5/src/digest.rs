//! The 128-bit MD5 digest value type.

use std::fmt;

/// A 128-bit MD5 digest.
///
/// Ordered, hashable and cheaply copyable so it can key mismatch tables in
/// the integrity checker.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Digest(pub [u8; 16]);

impl Digest {
    /// Lowercase hexadecimal rendering, as OpenSSL's `md5` utility prints.
    pub fn to_hex(&self) -> String {
        let mut s = String::with_capacity(32);
        for b in self.0 {
            use fmt::Write as _;
            // Writing to a String cannot fail.
            let _ = write!(s, "{b:02x}");
        }
        s
    }

    /// Parses a 32-character hex string. Returns `None` on bad length or
    /// non-hex characters.
    pub fn from_hex(s: &str) -> Option<Self> {
        let s = s.as_bytes();
        if s.len() != 32 {
            return None;
        }
        let mut out = [0u8; 16];
        for (i, pair) in s.chunks_exact(2).enumerate() {
            let hi = (pair[0] as char).to_digit(16)?;
            let lo = (pair[1] as char).to_digit(16)?;
            out[i] = ((hi << 4) | lo) as u8;
        }
        Some(Digest(out))
    }

    /// Raw digest bytes.
    pub fn as_bytes(&self) -> &[u8; 16] {
        &self.0
    }
}

impl fmt::Debug for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Digest({})", self.to_hex())
    }
}

impl fmt::Display for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_hex_rejects_bad_input() {
        assert!(Digest::from_hex("short").is_none());
        assert!(Digest::from_hex(&"g".repeat(32)).is_none());
        assert!(Digest::from_hex(&"0".repeat(33)).is_none());
        assert!(Digest::from_hex(&"0".repeat(32)).is_some());
    }

    #[test]
    fn display_matches_to_hex() {
        let d = Digest([
            0xde, 0xad, 0xbe, 0xef, 0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 0xff,
        ]);
        assert_eq!(format!("{d}"), d.to_hex());
        assert!(d.to_hex().starts_with("deadbeef"));
    }
}
