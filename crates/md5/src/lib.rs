//! MD5 message digest, implemented from scratch per RFC 1321.
//!
//! The ModChecker paper hashes every extracted PE header and executable
//! section with OpenSSL's MD5. This crate is the substitution: a dependency-
//! free MD5 with both a one-shot ([`md5`]) and an incremental ([`Md5`]) API,
//! validated against the RFC 1321 test suite.
//!
//! MD5 is used here exactly as the paper uses it — as a fast fingerprint for
//! cross-VM *consistency* checking, not as a collision-resistant commitment.
//!
//! # Examples
//!
//! ```
//! let d = mc_md5::md5(b"abc");
//! assert_eq!(d.to_hex(), "900150983cd24fb0d6963f7d28e17f72");
//!
//! let mut ctx = mc_md5::Md5::new();
//! ctx.update(b"ab");
//! ctx.update(b"c");
//! assert_eq!(ctx.finalize(), d);
//! ```

#![warn(missing_docs)]

mod digest;

pub use digest::Digest;

/// Per-round shift amounts (RFC 1321 section 3.4).
const S: [u32; 64] = [
    7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, //
    5, 9, 14, 20, 5, 9, 14, 20, 5, 9, 14, 20, 5, 9, 14, 20, //
    4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, //
    6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21,
];

/// Sine-derived constants `K[i] = floor(2^32 * abs(sin(i + 1)))`.
const K: [u32; 64] = [
    0xd76aa478, 0xe8c7b756, 0x242070db, 0xc1bdceee, 0xf57c0faf, 0x4787c62a, 0xa8304613, 0xfd469501,
    0x698098d8, 0x8b44f7af, 0xffff5bb1, 0x895cd7be, 0x6b901122, 0xfd987193, 0xa679438e, 0x49b40821,
    0xf61e2562, 0xc040b340, 0x265e5a51, 0xe9b6c7aa, 0xd62f105d, 0x02441453, 0xd8a1e681, 0xe7d3fbc8,
    0x21e1cde6, 0xc33707d6, 0xf4d50d87, 0x455a14ed, 0xa9e3e905, 0xfcefa3f8, 0x676f02d9, 0x8d2a4c8a,
    0xfffa3942, 0x8771f681, 0x6d9d6122, 0xfde5380c, 0xa4beea44, 0x4bdecfa9, 0xf6bb4b60, 0xbebfbc70,
    0x289b7ec6, 0xeaa127fa, 0xd4ef3085, 0x04881d05, 0xd9d4d039, 0xe6db99e5, 0x1fa27cf8, 0xc4ac5665,
    0xf4292244, 0x432aff97, 0xab9423a7, 0xfc93a039, 0x655b59c3, 0x8f0ccc92, 0xffeff47d, 0x85845dd1,
    0x6fa87e4f, 0xfe2ce6e0, 0xa3014314, 0x4e0811a1, 0xf7537e82, 0xbd3af235, 0x2ad7d2bb, 0xeb86d391,
];

/// Initial state (RFC 1321 section 3.3), little-endian word order A, B, C, D.
const INIT: [u32; 4] = [0x67452301, 0xefcdab89, 0x98badcfe, 0x10325476];

/// Incremental MD5 context.
///
/// Feed arbitrary chunks with [`Md5::update`] and call [`Md5::finalize`] once
/// at the end. The digest is independent of how the input is split across
/// `update` calls (verified by property test).
#[derive(Clone, Debug)]
pub struct Md5 {
    state: [u32; 4],
    /// Total message length in bytes (mod 2^64, as RFC allows).
    len: u64,
    /// Partial block carried between `update` calls.
    buf: [u8; 64],
    buf_len: usize,
}

impl Default for Md5 {
    fn default() -> Self {
        Self::new()
    }
}

impl Md5 {
    /// Creates a fresh context.
    pub fn new() -> Self {
        Md5 {
            state: INIT,
            len: 0,
            buf: [0u8; 64],
            buf_len: 0,
        }
    }

    /// Absorbs `data` into the digest state.
    pub fn update(&mut self, data: &[u8]) {
        self.len = self.len.wrapping_add(data.len() as u64);
        let mut rest = data;

        if self.buf_len > 0 {
            let take = rest.len().min(64 - self.buf_len);
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&rest[..take]);
            self.buf_len += take;
            rest = &rest[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            } else {
                // The partial buffer absorbed all of `data`; nothing may fall
                // through to the tail logic below or it would clobber
                // `buf_len`.
                debug_assert!(rest.is_empty());
                return;
            }
        }

        let mut chunks = rest.chunks_exact(64);
        for block in &mut chunks {
            // `chunks_exact` guarantees 64 bytes; copy into a fixed array so the
            // compress loop indexes without bound checks.
            let mut b = [0u8; 64];
            b.copy_from_slice(block);
            self.compress(&b);
        }
        let tail = chunks.remainder();
        self.buf[..tail.len()].copy_from_slice(tail);
        self.buf_len = tail.len();
    }

    /// Applies RFC 1321 padding and returns the final digest, consuming the
    /// context.
    pub fn finalize(mut self) -> Digest {
        let bit_len = self.len.wrapping_mul(8);
        // Padding: a single 0x80 byte, zeros to 56 mod 64, then the 64-bit
        // little-endian message bit length.
        self.update(&[0x80]);
        while self.buf_len != 56 {
            self.update(&[0]);
        }
        // `update` also advances `len`, which is why `bit_len` was latched first.
        self.update(&bit_len.to_le_bytes());
        debug_assert_eq!(self.buf_len, 0);

        let mut out = [0u8; 16];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_le_bytes());
        }
        Digest(out)
    }

    /// One 64-byte block of the MD5 compression function.
    fn compress(&mut self, block: &[u8; 64]) {
        let mut m = [0u32; 16];
        for (i, word) in m.iter_mut().enumerate() {
            *word = u32::from_le_bytes([
                block[i * 4],
                block[i * 4 + 1],
                block[i * 4 + 2],
                block[i * 4 + 3],
            ]);
        }

        let [mut a, mut b, mut c, mut d] = self.state;
        for i in 0..64 {
            let (f, g) = match i / 16 {
                0 => ((b & c) | (!b & d), i),
                1 => ((d & b) | (!d & c), (5 * i + 1) % 16),
                2 => (b ^ c ^ d, (3 * i + 5) % 16),
                _ => (c ^ (b | !d), (7 * i) % 16),
            };
            let tmp = d;
            d = c;
            c = b;
            b = b.wrapping_add(
                a.wrapping_add(f)
                    .wrapping_add(K[i])
                    .wrapping_add(m[g])
                    .rotate_left(S[i]),
            );
            a = tmp;
        }

        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
    }
}

/// One-shot MD5 of `data`.
pub fn md5(data: &[u8]) -> Digest {
    let mut ctx = Md5::new();
    ctx.update(data);
    ctx.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// RFC 1321 appendix A.5 test suite.
    const VECTORS: &[(&str, &str)] = &[
        ("", "d41d8cd98f00b204e9800998ecf8427e"),
        ("a", "0cc175b9c0f1b6a831c399e269772661"),
        ("abc", "900150983cd24fb0d6963f7d28e17f72"),
        ("message digest", "f96b697d7cb7938d525a2f31aaf161d0"),
        (
            "abcdefghijklmnopqrstuvwxyz",
            "c3fcd3d76192e4007dfb496cca67e13b",
        ),
        (
            "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789",
            "d174ab98d277d9f5a5611c2c9f419d9f",
        ),
        (
            "12345678901234567890123456789012345678901234567890123456789012345678901234567890",
            "57edf4a22be3c955ac49da2e2107b67a",
        ),
    ];

    #[test]
    fn rfc1321_vectors() {
        for (input, expected) in VECTORS {
            assert_eq!(md5(input.as_bytes()).to_hex(), *expected, "input {input:?}");
        }
    }

    #[test]
    fn incremental_matches_oneshot_on_block_boundaries() {
        // Lengths chosen to straddle the 56-byte padding threshold and the
        // 64-byte block size.
        for len in [0usize, 1, 55, 56, 57, 63, 64, 65, 127, 128, 129, 1000] {
            let data: Vec<u8> = (0..len).map(|i| (i * 31 % 251) as u8).collect();
            let oneshot = md5(&data);
            let mut ctx = Md5::new();
            for chunk in data.chunks(7) {
                ctx.update(chunk);
            }
            assert_eq!(ctx.finalize(), oneshot, "len {len}");
        }
    }

    #[test]
    fn single_bit_flip_changes_digest() {
        let data = vec![0xAAu8; 300];
        let base = md5(&data);
        for byte in [0usize, 150, 299] {
            let mut flipped = data.clone();
            flipped[byte] ^= 1;
            assert_ne!(md5(&flipped), base, "flip at byte {byte}");
        }
    }

    #[test]
    fn digest_roundtrips_through_hex() {
        let d = md5(b"roundtrip");
        let parsed = Digest::from_hex(&d.to_hex()).unwrap();
        assert_eq!(parsed, d);
    }

    #[test]
    fn empty_update_calls_are_identity() {
        let mut ctx = Md5::new();
        ctx.update(b"");
        ctx.update(b"abc");
        ctx.update(b"");
        assert_eq!(ctx.finalize().to_hex(), "900150983cd24fb0d6963f7d28e17f72");
    }

    #[test]
    fn clone_forks_the_stream() {
        let mut ctx = Md5::new();
        ctx.update(b"common prefix ");
        let fork = ctx.clone();
        ctx.update(b"left");
        let mut right = fork;
        right.update(b"right");
        assert_eq!(ctx.finalize(), md5(b"common prefix left"));
        assert_eq!(right.finalize(), md5(b"common prefix right"));
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Splitting the input arbitrarily across update calls never
            /// changes the digest.
            #[test]
            fn incremental_equals_oneshot(data in proptest::collection::vec(any::<u8>(), 0..4096),
                                          cuts in proptest::collection::vec(0usize..4096, 0..8)) {
                let oneshot = md5(&data);
                let mut points: Vec<usize> = cuts.into_iter().map(|c| c % (data.len() + 1)).collect();
                points.sort_unstable();
                let mut ctx = Md5::new();
                let mut prev = 0;
                for p in points {
                    ctx.update(&data[prev..p]);
                    prev = p;
                }
                ctx.update(&data[prev..]);
                prop_assert_eq!(ctx.finalize(), oneshot);
            }

            /// Distinct short inputs produce distinct digests (no accidental
            /// state-reset bug that maps everything to one value).
            #[test]
            fn length_extension_distinct(data in proptest::collection::vec(any::<u8>(), 0..256)) {
                let mut extended = data.clone();
                extended.push(0);
                prop_assert_ne!(md5(&extended), md5(&data));
            }
        }
    }
}
